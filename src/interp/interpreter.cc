#include "src/interp/interpreter.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/support/check.h"

namespace cdmm {
namespace {

class Interpreter {
 public:
  Interpreter(const Program& program, const LoopTree& tree, const DirectivePlan* plan,
              const InterpOptions& options, InterpState* state)
      : program_(program),
        tree_(tree),
        plan_(plan),
        options_(options),
        state_(state),
        address_map_(program, options.geometry),
        trace_(program.name) {
    trace_.set_virtual_pages(address_map_.total_pages());
  }

  Trace Run(size_t stmt_begin, size_t stmt_end) {
    stmt_end = std::min(stmt_end, program_.body.size());
    for (size_t s = stmt_begin; s < stmt_end; ++s) {
      Execute(*program_.body[s]);
    }
    return std::move(trace_);
  }

 private:
  // Key identifying a LOCK site: (host loop, child loop it precedes).
  using LockSiteKey = std::pair<uint32_t, uint32_t>;

  int64_t EnvLookup(const std::string& var) const {
    auto it = env_.find(var);
    CDMM_CHECK_MSG(it != env_.end(), "unbound loop variable " << var);
    return it->second;
  }

  // Evaluates a subscript. An indirect subscript IDX(I)+c references the
  // INTEGER array's page (emitted inner-first, before the outer array's own
  // reference) and resolves to the stored element value plus the offset.
  int64_t EvalIndex(const IndexExpr& ix) {
    if (ix.IsIndirect()) {
      return ReadIntElement(*ix.indirect) + ix.offset;
    }
    return ix.IsConstant() ? ix.offset : EnvLookup(ix.var) + ix.offset;
  }

  int64_t EvalBound(const LoopBound& bound) const {
    return bound.kind == LoopBound::Kind::kVariable ? EnvLookup(bound.spelling) : bound.value;
  }

  PageId EmitRefAt(const ArrayRef& ref, int64_t i, int64_t j) {
    PageId page = address_map_.PageOf(ref.name, i, j);
    CDMM_CHECK_MSG(trace_.reference_count() < options_.max_references,
                   "reference cap exceeded; runaway workload?");
    trace_.AddRef(page);
    if (!segment_touches_.empty()) {
      segment_touches_.back().emplace(ref.name, page);
    }
    return page;
  }

  PageId EmitRef(const ArrayRef& ref) {
    int64_t i = EvalIndex(ref.indices[0]);
    int64_t j = ref.indices.size() == 2 ? EvalIndex(ref.indices[1]) : 1;
    return EmitRefAt(ref, i, j);
  }

  bool IsIntegerArray(const std::string& name) const {
    const ArrayDecl* decl = program_.FindArray(name);
    return decl != nullptr && decl->is_integer;
  }

  // Flat storage slot of an INTEGER array element (column-major, like the
  // address map). Lazily zero-initializes the backing vector, mirroring the
  // trace model's "declared arrays exist from program start" assumption.
  int64_t& IntStorage(const std::string& name, int64_t i, int64_t j) {
    const ArrayDecl* decl = program_.FindArray(name);
    CDMM_CHECK_MSG(decl != nullptr && decl->is_integer,
                   name << " is not a declared INTEGER array");
    std::vector<int64_t>& cells = state_->int_arrays[name];
    if (cells.empty()) {
      cells.assign(static_cast<size_t>(decl->rows * std::max<int64_t>(decl->cols, 1)), 0);
    }
    CDMM_CHECK_MSG(i >= 1 && i <= decl->rows && j >= 1 && j <= std::max<int64_t>(decl->cols, 1),
                   name << "(" << i << "," << j << ") outside declared bounds");
    return cells[static_cast<size_t>((i - 1) + (j - 1) * decl->rows)];
  }

  // Reads one INTEGER array element: emits its page reference, returns the
  // stored value.
  int64_t ReadIntElement(const ArrayRef& ref) {
    int64_t i = EvalIndex(ref.indices[0]);
    int64_t j = ref.indices.size() == 2 ? EvalIndex(ref.indices[1]) : 1;
    EmitRefAt(ref, i, j);
    return IntStorage(ref.name, i, j);
  }

  // Integer evaluation for INTEGER-array assignment right-hand sides and
  // logical-IF conditions. Emits a page reference for every INTEGER array
  // element read (a single traversal — the caller must NOT also run
  // EvalExprRefs over the same expression). Comparisons and logical
  // connectives yield 1/0.
  int64_t EvalInt(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kNumber: {
        int64_t v = static_cast<int64_t>(expr.number);
        CDMM_CHECK_MSG(static_cast<double>(v) == expr.number,
                       "non-integral literal " << expr.number << " in integer context");
        return v;
      }
      case Expr::Kind::kScalar: {
        auto it = program_.parameters.find(expr.scalar);
        return it != program_.parameters.end() ? it->second : EnvLookup(expr.scalar);
      }
      case Expr::Kind::kArrayElement:
        return ReadIntElement(expr.array);
      case Expr::Kind::kNegate:
        return -EvalInt(*expr.lhs);
      case Expr::Kind::kBinary: {
        int64_t a = EvalInt(*expr.lhs);
        int64_t b = EvalInt(*expr.rhs);
        switch (expr.op) {
          case '+':
            return a + b;
          case '-':
            return a - b;
          case '*':
            return a * b;
          case '/':
            CDMM_CHECK_MSG(b != 0, "integer division by zero");
            return a / b;
          case '%':
            CDMM_CHECK_MSG(b != 0, "MOD by zero");
            return a % b;
        }
        CDMM_UNREACHABLE("unknown binary operator");
      }
      case Expr::Kind::kCompare: {
        int64_t a = EvalInt(*expr.lhs);
        int64_t b = EvalInt(*expr.rhs);
        switch (expr.rel) {
          case RelOp::kGt:
            return a > b;
          case RelOp::kGe:
            return a >= b;
          case RelOp::kLt:
            return a < b;
          case RelOp::kLe:
            return a <= b;
          case RelOp::kEq:
            return a == b;
          case RelOp::kNe:
            return a != b;
        }
        CDMM_UNREACHABLE("unknown relational operator");
      }
      case Expr::Kind::kAnd:
        // No short-circuit: conditions are array-free (sema S010), so both
        // operands are side-effect-free and evaluation order is moot.
        return (EvalInt(*expr.lhs) != 0 && EvalInt(*expr.rhs) != 0) ? 1 : 0;
      case Expr::Kind::kOr:
        return (EvalInt(*expr.lhs) != 0 || EvalInt(*expr.rhs) != 0) ? 1 : 0;
    }
    CDMM_UNREACHABLE("unknown expression kind");
  }

  void EvalExprRefs(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kNumber:
      case Expr::Kind::kScalar:
        return;
      case Expr::Kind::kArrayElement:
        EmitRef(expr.array);
        return;
      case Expr::Kind::kNegate:
        EvalExprRefs(*expr.lhs);
        return;
      case Expr::Kind::kBinary:
      case Expr::Kind::kCompare:
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
        EvalExprRefs(*expr.lhs);
        EvalExprRefs(*expr.rhs);
        return;
    }
  }

  void Execute(const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kIf) {
      // S010 guarantees the condition references no arrays, so evaluating it
      // emits nothing; only the taken branch contributes trace events.
      if (EvalInt(*stmt.if_cond) != 0) {
        Execute(*stmt.if_then);
      }
      return;
    }
    if (stmt.kind == Stmt::Kind::kAssign) {
      if (stmt.lhs_array.has_value() && IsIntegerArray(stmt.lhs_array->name)) {
        // INTEGER-array store: one EvalInt traversal both emits the RHS
        // reads and computes the value, then the write is emitted and the
        // element updated (reads before write, as for real assignments).
        int64_t v = EvalInt(*stmt.rhs);
        int64_t i = EvalIndex(stmt.lhs_array->indices[0]);
        int64_t j = stmt.lhs_array->indices.size() == 2 ? EvalIndex(stmt.lhs_array->indices[1]) : 1;
        EmitRefAt(*stmt.lhs_array, i, j);
        IntStorage(stmt.lhs_array->name, i, j) = v;
        return;
      }
      // Reads first (right-hand side, left to right), then the write.
      EvalExprRefs(*stmt.rhs);
      if (stmt.lhs_array.has_value()) {
        EmitRef(*stmt.lhs_array);
      }
      return;
    }
    ExecuteLoop(stmt);
  }

  void EmitAllocate(uint32_t loop_id) {
    if (plan_ == nullptr) {
      return;
    }
    auto it = plan_->allocate_before_loop.find(loop_id);
    if (it == plan_->allocate_before_loop.end()) {
      return;
    }
    DirectiveRecord rec;
    rec.kind = DirectiveRecord::Kind::kAllocate;
    rec.loop_id = loop_id;
    rec.requests = it->second.chain;
    trace_.AddDirective(std::move(rec));
  }

  // Emits the LOCK for one site. `touched` holds the (array, page) pairs the
  // current iteration's segment produced. Pages locked by this site in a
  // previous iteration that are not re-locked now are released first.
  void EmitLock(const LockPlan& lock, const std::set<std::pair<std::string, PageId>>& touched) {
    std::set<PageId> pages;
    for (const std::string& array : lock.arrays) {
      for (const auto& [name, page] : touched) {
        if (name == array) {
          pages.insert(page);
        }
      }
    }
    LockSiteKey key{lock.host_loop_id, lock.before_child_loop_id};
    std::set<PageId>& held = site_locked_[key];

    std::vector<PageId> to_release;
    for (PageId p : held) {
      if (pages.count(p) == 0) {
        to_release.push_back(p);
      }
    }
    if (!to_release.empty()) {
      DirectiveRecord rel;
      rel.kind = DirectiveRecord::Kind::kUnlock;
      rel.loop_id = lock.host_loop_id;
      rel.pages = to_release;
      trace_.AddDirective(std::move(rel));
      for (PageId p : to_release) {
        held.erase(p);
        nest_locked_.erase(p);
      }
    }

    std::vector<PageId> to_lock;
    for (PageId p : pages) {
      if (held.count(p) == 0) {
        to_lock.push_back(p);
      }
    }
    // Re-issue the LOCK every iteration as the paper's Algorithm 2 does,
    // even when the page set is unchanged (the OS treats it as a no-op).
    DirectiveRecord rec;
    rec.kind = DirectiveRecord::Kind::kLock;
    rec.loop_id = lock.host_loop_id;
    rec.lock_priority = lock.pj;
    rec.pages.assign(pages.begin(), pages.end());
    trace_.AddDirective(std::move(rec));
    for (PageId p : to_lock) {
      held.insert(p);
      nest_locked_.insert(p);
    }
  }

  void EmitFinalUnlock(uint32_t loop_id) {
    if (plan_ == nullptr) {
      return;
    }
    auto it = plan_->unlock_after_loop.find(loop_id);
    if (it == plan_->unlock_after_loop.end()) {
      return;
    }
    DirectiveRecord rec;
    rec.kind = DirectiveRecord::Kind::kUnlock;
    rec.loop_id = loop_id;
    rec.pages.assign(nest_locked_.begin(), nest_locked_.end());
    trace_.AddDirective(std::move(rec));
    nest_locked_.clear();
    site_locked_.clear();
  }

  void ExecuteLoop(const Stmt& loop) {
    const LoopNode& node = tree_.node(loop.loop_id);
    EmitAllocate(loop.loop_id);
    if (options_.emit_loop_markers) {
      trace_.AddLoopEnter(loop.loop_id);
    }

    int64_t lo = EvalBound(loop.lower);
    int64_t hi = EvalBound(loop.upper);
    int64_t step = loop.step;
    auto continues = [&](int64_t v) { return step > 0 ? v <= hi : v >= hi; };

    for (int64_t v = lo; continues(v); v += step) {
      env_[loop.loop_var] = v;
      for (const LoopNode::BodySegment& segment : node.segments) {
        segment_touches_.emplace_back();
        for (const Stmt* stmt : segment.assigns) {
          Execute(*stmt);
        }
        std::set<std::pair<std::string, PageId>> touched = std::move(segment_touches_.back());
        segment_touches_.pop_back();
        if (segment.next_child != nullptr) {
          if (plan_ != nullptr) {
            for (const LockPlan* lock :
                 plan_->LocksBefore(loop.loop_id, segment.next_child->loop_id)) {
              EmitLock(*lock, touched);
            }
          }
          ExecuteLoop(*segment.next_child->loop);
        }
      }
    }
    env_.erase(loop.loop_var);

    if (options_.emit_loop_markers) {
      trace_.AddLoopExit(loop.loop_id);
    }
    EmitFinalUnlock(loop.loop_id);
  }

  const Program& program_;
  const LoopTree& tree_;
  const DirectivePlan* plan_;
  InterpOptions options_;
  InterpState* state_;
  AddressMap address_map_;
  Trace trace_;

  std::map<std::string, int64_t> env_;
  // Stack of per-segment (array, page) touch sets; top = current segment.
  std::vector<std::set<std::pair<std::string, PageId>>> segment_touches_;
  // Pages currently locked, per lock site and for the whole nest.
  std::map<LockSiteKey, std::set<PageId>> site_locked_;
  std::set<PageId> nest_locked_;
};

}  // namespace

Trace GenerateTrace(const Program& program, const LoopTree& tree, const DirectivePlan* plan,
                    const InterpOptions& options) {
  InterpState state;
  return Interpreter(program, tree, plan, options, &state).Run(0, program.body.size());
}

Trace GenerateTraceSlice(const Program& program, const LoopTree& tree, const DirectivePlan* plan,
                         const InterpOptions& options, size_t stmt_begin, size_t stmt_end,
                         InterpState* state) {
  CDMM_CHECK(state != nullptr);
  return Interpreter(program, tree, plan, options, state).Run(stmt_begin, stmt_end);
}

}  // namespace cdmm
