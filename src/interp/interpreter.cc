#include "src/interp/interpreter.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/support/check.h"

namespace cdmm {
namespace {

class Interpreter {
 public:
  Interpreter(const Program& program, const LoopTree& tree, const DirectivePlan* plan,
              const InterpOptions& options, InterpState* state)
      : program_(program),
        tree_(tree),
        plan_(plan),
        options_(options),
        state_(state),
        address_map_(program, options.geometry),
        trace_(program.name) {
    trace_.set_virtual_pages(address_map_.total_pages());
  }

  Trace Run(size_t stmt_begin, size_t stmt_end) {
    stmt_end = std::min(stmt_end, program_.body.size());
    for (size_t s = stmt_begin; s < stmt_end; ++s) {
      Execute(*program_.body[s]);
    }
    return std::move(trace_);
  }

 private:
  // Key identifying a LOCK site: (host loop, child loop it precedes).
  using LockSiteKey = std::pair<uint32_t, uint32_t>;

  // Innermost binding wins: the scan runs newest-to-oldest over the flat
  // binding stack (nests are shallow, so this beats a map descent).
  int64_t EnvLookup(const std::string& var) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (*it->first == var) {
        return it->second;
      }
    }
    CDMM_CHECK_MSG(false, "unbound loop variable " << var);
    return 0;
  }

  // Evaluates a subscript. An indirect subscript IDX(I)+c references the
  // INTEGER array's page (emitted inner-first, before the outer array's own
  // reference) and resolves to the stored element value plus the offset.
  int64_t EvalIndex(const IndexExpr& ix) {
    if (ix.IsIndirect()) {
      return ReadIntElement(*ix.indirect) + ix.offset;
    }
    return ix.IsConstant() ? ix.offset : EnvLookup(ix.var) + ix.offset;
  }

  int64_t EvalBound(const LoopBound& bound) const {
    return bound.kind == LoopBound::Kind::kVariable ? EnvLookup(bound.spelling) : bound.value;
  }

  PageId EmitRefAt(const ArrayRef& ref, int64_t i, int64_t j) {
    PageId page = address_map_.PageOf(ref.name, i, j);
    CDMM_CHECK_MSG(trace_.reference_count() < options_.max_references,
                   "reference cap exceeded; runaway workload?");
    trace_.AddRef(page);
    // Touch recording only runs under a directive plan (touch_depth_ stays 0
    // otherwise): LOCK emission is the sole consumer, so nominal trace
    // generation pays nothing. Duplicates are fine — EmitLock dedupes.
    if (touch_depth_ > 0) {
      touch_pool_[touch_depth_ - 1].emplace_back(&ref.name, page);
    }
    return page;
  }

  PageId EmitRef(const ArrayRef& ref) {
    int64_t i = EvalIndex(ref.indices[0]);
    int64_t j = ref.indices.size() == 2 ? EvalIndex(ref.indices[1]) : 1;
    return EmitRefAt(ref, i, j);
  }

  // One-entry declaration cache (content-compared): per-element execution
  // hits the same array over and over, so the repeat lookup is one string
  // compare instead of a scan of the declaration list. Misses (including
  // non-array names) fall through to the program lookup.
  const ArrayDecl* FindArrayCached(const std::string& name) const {
    if (last_decl_ != nullptr && last_decl_->name == name) {
      return last_decl_;
    }
    const ArrayDecl* decl = program_.FindArray(name);
    if (decl != nullptr) {
      last_decl_ = decl;
    }
    return decl;
  }

  bool IsIntegerArray(const std::string& name) const {
    const ArrayDecl* decl = FindArrayCached(name);
    return decl != nullptr && decl->is_integer;
  }

  // Flat storage slot of an INTEGER array element (column-major, like the
  // address map). Lazily zero-initializes the backing vector, mirroring the
  // trace model's "declared arrays exist from program start" assumption.
  // The cells vector is cached per declaration (int_arrays is node-based, so
  // the address is stable across inserts and across interpreter slices).
  int64_t& IntStorage(const std::string& name, int64_t i, int64_t j) {
    const ArrayDecl* decl = FindArrayCached(name);
    CDMM_CHECK_MSG(decl != nullptr && decl->is_integer,
                   name << " is not a declared INTEGER array");
    if (decl != last_cells_decl_) {
      last_cells_decl_ = decl;
      last_cells_ = &state_->int_arrays[name];
    }
    std::vector<int64_t>& cells = *last_cells_;
    if (cells.empty()) {
      cells.assign(static_cast<size_t>(decl->rows * std::max<int64_t>(decl->cols, 1)), 0);
    }
    CDMM_CHECK_MSG(i >= 1 && i <= decl->rows && j >= 1 && j <= std::max<int64_t>(decl->cols, 1),
                   name << "(" << i << "," << j << ") outside declared bounds");
    return cells[static_cast<size_t>((i - 1) + (j - 1) * decl->rows)];
  }

  // Reads one INTEGER array element: emits its page reference, returns the
  // stored value.
  int64_t ReadIntElement(const ArrayRef& ref) {
    int64_t i = EvalIndex(ref.indices[0]);
    int64_t j = ref.indices.size() == 2 ? EvalIndex(ref.indices[1]) : 1;
    EmitRefAt(ref, i, j);
    return IntStorage(ref.name, i, j);
  }

  // Integer evaluation for INTEGER-array assignment right-hand sides and
  // logical-IF conditions. Emits a page reference for every INTEGER array
  // element read (a single traversal — the caller must NOT also run
  // EvalExprRefs over the same expression). Comparisons and logical
  // connectives yield 1/0.
  int64_t EvalInt(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kNumber: {
        int64_t v = static_cast<int64_t>(expr.number);
        CDMM_CHECK_MSG(static_cast<double>(v) == expr.number,
                       "non-integral literal " << expr.number << " in integer context");
        return v;
      }
      case Expr::Kind::kScalar: {
        auto it = program_.parameters.find(expr.scalar);
        return it != program_.parameters.end() ? it->second : EnvLookup(expr.scalar);
      }
      case Expr::Kind::kArrayElement:
        return ReadIntElement(expr.array);
      case Expr::Kind::kNegate:
        return -EvalInt(*expr.lhs);
      case Expr::Kind::kBinary: {
        int64_t a = EvalInt(*expr.lhs);
        int64_t b = EvalInt(*expr.rhs);
        switch (expr.op) {
          case '+':
            return a + b;
          case '-':
            return a - b;
          case '*':
            return a * b;
          case '/':
            CDMM_CHECK_MSG(b != 0, "integer division by zero");
            return a / b;
          case '%':
            CDMM_CHECK_MSG(b != 0, "MOD by zero");
            return a % b;
        }
        CDMM_UNREACHABLE("unknown binary operator");
      }
      case Expr::Kind::kCompare: {
        int64_t a = EvalInt(*expr.lhs);
        int64_t b = EvalInt(*expr.rhs);
        switch (expr.rel) {
          case RelOp::kGt:
            return a > b;
          case RelOp::kGe:
            return a >= b;
          case RelOp::kLt:
            return a < b;
          case RelOp::kLe:
            return a <= b;
          case RelOp::kEq:
            return a == b;
          case RelOp::kNe:
            return a != b;
        }
        CDMM_UNREACHABLE("unknown relational operator");
      }
      case Expr::Kind::kAnd:
        // No short-circuit: conditions are array-free (sema S010), so both
        // operands are side-effect-free and evaluation order is moot.
        return (EvalInt(*expr.lhs) != 0 && EvalInt(*expr.rhs) != 0) ? 1 : 0;
      case Expr::Kind::kOr:
        return (EvalInt(*expr.lhs) != 0 || EvalInt(*expr.rhs) != 0) ? 1 : 0;
    }
    CDMM_UNREACHABLE("unknown expression kind");
  }

  void EvalExprRefs(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kNumber:
      case Expr::Kind::kScalar:
        return;
      case Expr::Kind::kArrayElement:
        EmitRef(expr.array);
        return;
      case Expr::Kind::kNegate:
        EvalExprRefs(*expr.lhs);
        return;
      case Expr::Kind::kBinary:
      case Expr::Kind::kCompare:
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
        EvalExprRefs(*expr.lhs);
        EvalExprRefs(*expr.rhs);
        return;
    }
  }

  void Execute(const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kIf) {
      // S010 guarantees the condition references no arrays, so evaluating it
      // emits nothing; only the taken branch contributes trace events.
      if (EvalInt(*stmt.if_cond) != 0) {
        Execute(*stmt.if_then);
      }
      return;
    }
    if (stmt.kind == Stmt::Kind::kAssign) {
      if (stmt.lhs_array.has_value() && IsIntegerArray(stmt.lhs_array->name)) {
        // INTEGER-array store: one EvalInt traversal both emits the RHS
        // reads and computes the value, then the write is emitted and the
        // element updated (reads before write, as for real assignments).
        int64_t v = EvalInt(*stmt.rhs);
        int64_t i = EvalIndex(stmt.lhs_array->indices[0]);
        int64_t j = stmt.lhs_array->indices.size() == 2 ? EvalIndex(stmt.lhs_array->indices[1]) : 1;
        EmitRefAt(*stmt.lhs_array, i, j);
        IntStorage(stmt.lhs_array->name, i, j) = v;
        return;
      }
      // Reads first (right-hand side, left to right), then the write.
      EvalExprRefs(*stmt.rhs);
      if (stmt.lhs_array.has_value()) {
        EmitRef(*stmt.lhs_array);
      }
      return;
    }
    ExecuteLoop(stmt);
  }

  void EmitAllocate(uint32_t loop_id) {
    if (plan_ == nullptr) {
      return;
    }
    auto it = plan_->allocate_before_loop.find(loop_id);
    if (it == plan_->allocate_before_loop.end()) {
      return;
    }
    DirectiveRecord rec;
    rec.kind = DirectiveRecord::Kind::kAllocate;
    rec.loop_id = loop_id;
    rec.requests = it->second.chain;
    trace_.AddDirective(std::move(rec));
  }

  // Emits the LOCK for one site. `touched` holds the (array, page) pairs the
  // current iteration's segment produced, in emission order and possibly
  // with duplicates (the pages set below dedupes). Pages locked by this site
  // in a previous iteration that are not re-locked now are released first.
  void EmitLock(const LockPlan& lock,
                const std::vector<std::pair<const std::string*, PageId>>& touched) {
    std::set<PageId> pages;
    for (const std::string& array : lock.arrays) {
      for (const auto& [name, page] : touched) {
        if (*name == array) {
          pages.insert(page);
        }
      }
    }
    LockSiteKey key{lock.host_loop_id, lock.before_child_loop_id};
    std::set<PageId>& held = site_locked_[key];

    std::vector<PageId> to_release;
    for (PageId p : held) {
      if (pages.count(p) == 0) {
        to_release.push_back(p);
      }
    }
    if (!to_release.empty()) {
      DirectiveRecord rel;
      rel.kind = DirectiveRecord::Kind::kUnlock;
      rel.loop_id = lock.host_loop_id;
      rel.pages = to_release;
      trace_.AddDirective(std::move(rel));
      for (PageId p : to_release) {
        held.erase(p);
        nest_locked_.erase(p);
      }
    }

    std::vector<PageId> to_lock;
    for (PageId p : pages) {
      if (held.count(p) == 0) {
        to_lock.push_back(p);
      }
    }
    // Re-issue the LOCK every iteration as the paper's Algorithm 2 does,
    // even when the page set is unchanged (the OS treats it as a no-op).
    DirectiveRecord rec;
    rec.kind = DirectiveRecord::Kind::kLock;
    rec.loop_id = lock.host_loop_id;
    rec.lock_priority = lock.pj;
    rec.pages.assign(pages.begin(), pages.end());
    trace_.AddDirective(std::move(rec));
    for (PageId p : to_lock) {
      held.insert(p);
      nest_locked_.insert(p);
    }
  }

  void EmitFinalUnlock(uint32_t loop_id) {
    if (plan_ == nullptr) {
      return;
    }
    auto it = plan_->unlock_after_loop.find(loop_id);
    if (it == plan_->unlock_after_loop.end()) {
      return;
    }
    DirectiveRecord rec;
    rec.kind = DirectiveRecord::Kind::kUnlock;
    rec.loop_id = loop_id;
    rec.pages.assign(nest_locked_.begin(), nest_locked_.end());
    trace_.AddDirective(std::move(rec));
    nest_locked_.clear();
    site_locked_.clear();
  }

  void ExecuteLoop(const Stmt& loop) {
    const LoopNode& node = tree_.node(loop.loop_id);
    EmitAllocate(loop.loop_id);
    if (options_.emit_loop_markers) {
      trace_.AddLoopEnter(loop.loop_id);
    }

    int64_t lo = EvalBound(loop.lower);
    int64_t hi = EvalBound(loop.upper);
    int64_t step = loop.step;
    auto continues = [&](int64_t v) { return step > 0 ? v <= hi : v >= hi; };

    // One binding slot for the whole loop; each iteration writes it in place.
    env_.emplace_back(&loop.loop_var, 0);
    const size_t env_slot = env_.size() - 1;
    for (int64_t v = lo; continues(v); v += step) {
      env_[env_slot].second = v;
      for (const LoopNode::BodySegment& segment : node.segments) {
        // Touch sets are only kept under a plan; the pool reuses one vector
        // per nesting depth so steady-state iterations allocate nothing.
        if (plan_ != nullptr) {
          if (touch_depth_ == touch_pool_.size()) {
            touch_pool_.emplace_back();
          }
          touch_pool_[touch_depth_].clear();
          ++touch_depth_;
        }
        for (const Stmt* stmt : segment.assigns) {
          Execute(*stmt);
        }
        if (plan_ != nullptr) {
          // Locks consume the segment's touches before the child runs (and
          // before the depth slot is recycled by the child's own segments).
          if (segment.next_child != nullptr) {
            for (const LockPlan* lock :
                 plan_->LocksBefore(loop.loop_id, segment.next_child->loop_id)) {
              EmitLock(*lock, touch_pool_[touch_depth_ - 1]);
            }
          }
          --touch_depth_;
        }
        if (segment.next_child != nullptr) {
          ExecuteLoop(*segment.next_child->loop);
        }
      }
    }
    env_.resize(env_slot);

    if (options_.emit_loop_markers) {
      trace_.AddLoopExit(loop.loop_id);
    }
    EmitFinalUnlock(loop.loop_id);
  }

  const Program& program_;
  const LoopTree& tree_;
  const DirectivePlan* plan_;
  InterpOptions options_;
  InterpState* state_;
  AddressMap address_map_;
  Trace trace_;

  // Loop-variable bindings, innermost last. Keys point at the loop
  // statements' own spellings (stable for the interpreter's lifetime).
  std::vector<std::pair<const std::string*, int64_t>> env_;
  // Per-depth pools of (array-name, page) touches; entries [0, touch_depth_)
  // are live. Depth stays 0 without a plan, so recording is fully gated.
  std::vector<std::vector<std::pair<const std::string*, PageId>>> touch_pool_;
  size_t touch_depth_ = 0;
  // Pages currently locked, per lock site and for the whole nest.
  std::map<LockSiteKey, std::set<PageId>> site_locked_;
  std::set<PageId> nest_locked_;
  // One-entry lookup caches (see FindArrayCached / IntStorage).
  mutable const ArrayDecl* last_decl_ = nullptr;
  const ArrayDecl* last_cells_decl_ = nullptr;
  std::vector<int64_t>* last_cells_ = nullptr;
};

}  // namespace

Trace GenerateTrace(const Program& program, const LoopTree& tree, const DirectivePlan* plan,
                    const InterpOptions& options) {
  InterpState state;
  return Interpreter(program, tree, plan, options, &state).Run(0, program.body.size());
}

Trace GenerateTraceSlice(const Program& program, const LoopTree& tree, const DirectivePlan* plan,
                         const InterpOptions& options, size_t stmt_begin, size_t stmt_end,
                         InterpState* state) {
  CDMM_CHECK(state != nullptr);
  return Interpreter(program, tree, plan, options, state).Run(stmt_begin, stmt_end);
}

}  // namespace cdmm
