// Memory-directive plan: the compile-time product of Algorithms 1 and 2
// (Figures 3 and 4 of the paper). The plan attaches directives to loop ids;
// the interpreter executes it, resolving symbolic "current page of array A"
// references to concrete page numbers at run time.
#ifndef CDMM_SRC_DIRECTIVES_PLAN_H_
#define CDMM_SRC_DIRECTIVES_PLAN_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/dependence.h"
#include "src/analysis/locality.h"
#include "src/analysis/loop_tree.h"
#include "src/trace/trace.h"

namespace cdmm {

// ALLOCATE ((PI_1,X_1) else (PI_2,X_2) else ...): executed every time
// control reaches the head of loop `loop_id`. The chain lists the enclosing
// loops outermost-first, ending with this loop (Algorithm 1).
struct AllocatePlan {
  uint32_t loop_id = 0;
  std::vector<AllocateRequest> chain;
};

// LOCK (PJ, Y_1, Y_2, ...): inserted inside `host_loop_id` immediately before
// `before_child_loop_id`. Y_i are symbolic here — the pages of `arrays`
// touched by the current iteration's preceding statements (Algorithm 2).
struct LockPlan {
  uint32_t host_loop_id = 0;
  uint32_t before_child_loop_id = 0;
  uint16_t pj = 0;  // host loop's priority index
  std::vector<std::string> arrays;
};

// UNLOCK (Y_1, ...): inserted after the outermost loop `after_loop_id` ends,
// releasing whatever pages of `arrays` are still locked.
struct UnlockPlan {
  uint32_t after_loop_id = 0;
  std::vector<std::string> arrays;
};

struct DirectivePlanOptions {
  bool insert_allocate = true;
  bool insert_locks = true;
};

// The full instrumented-program description.
struct DirectivePlan {
  std::map<uint32_t, AllocatePlan> allocate_before_loop;
  std::vector<LockPlan> locks;
  std::map<uint32_t, UnlockPlan> unlock_after_loop;
  // Loops the dependence graph proved free of carried dependences (only
  // filled by the dependence-aware overload below; empty for the structural
  // plan, whose output predates the analysis).
  std::set<uint32_t> independent_loops;

  // Lock plans hosted by `host` that fire immediately before `child`.
  std::vector<const LockPlan*> LocksBefore(uint32_t host, uint32_t child) const;
};

// Runs Algorithm 1 (ALLOCATE insertion, using the locality analysis for the
// X arguments) and Algorithm 2 (LOCK insertion) plus UNLOCK placement.
DirectivePlan BuildDirectivePlan(const LoopTree& tree, const LocalityAnalysis& locality,
                                 const DirectivePlanOptions& options = {});

// Dependence-aware variant: starts from the structural plan, then (a) records
// every loop the graph proves parallelizable in `independent_loops`, and
// (b) drops LOCK arrays whose segment references provably never flow into the
// guarded child nest (no dependence edge between a host-level site and a site
// inside the nest) — Algorithm 2's structural "lock everything the segment
// touched" sharpened by the analysis. UNLOCK sets are recomputed from the
// surviving locks. The structural overload stays byte-identical to earlier
// releases; this one is opt-in for callers that already built the graph.
DirectivePlan BuildDirectivePlan(const LoopTree& tree, const LocalityAnalysis& locality,
                                 const DependenceGraph& deps,
                                 const DirectivePlanOptions& options = {});

// Figure-5c-style listing: the program's loop skeleton with the directives
// interleaved. `compact` prints "Loop <label>;" lines instead of loop bodies.
std::string InstrumentedListing(const LoopTree& tree, const DirectivePlan& plan, bool compact);

}  // namespace cdmm

#endif  // CDMM_SRC_DIRECTIVES_PLAN_H_
