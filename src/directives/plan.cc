#include "src/directives/plan.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/support/check.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

// Algorithm 1: the ALLOCATE before loop ℓ carries the (PI, X) pairs of every
// enclosing loop outermost-first, ending with ℓ's own pair. (The paper keeps
// a running argument list while parsing, appending on loop entry and
// dropping the tail on loop exit; over a tree that is exactly the ancestor
// chain.)
AllocatePlan BuildAllocate(const LoopNode& node, const LocalityAnalysis& locality) {
  AllocatePlan plan;
  plan.loop_id = node.loop_id;
  std::vector<const LoopNode*> chain;
  for (const LoopNode* l = &node; l != nullptr; l = l->parent) {
    chain.push_back(l);
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const LoopLocality& ll = locality.loop((*it)->loop_id);
    AllocateRequest req;
    req.priority = static_cast<uint16_t>(ll.priority_index);
    req.pages = static_cast<uint32_t>(ll.pages);
    plan.chain.push_back(req);
  }
  // Ancestor PIs strictly decrease toward the innermost loop (Procedure 1
  // assigns each parent a strictly greater subtree height), and the locality
  // analysis enforces X_parent >= X_child; both invariants are re-checked by
  // Trace::AddDirective when the interpreter emits the directive.
  return plan;
}

// Algorithm 2: for each body segment of a loop that is followed by a nested
// loop, lock the arrays referenced by the segment's assignments. Trailing
// segments (followed by the loop exit) are skipped — "IF Loop Exit Is Found
// THEN SKIP Next INSERT".
void BuildLocks(const LoopNode& node, std::vector<LockPlan>* locks,
                std::set<std::string>* locked_arrays) {
  for (const LoopNode::BodySegment& segment : node.segments) {
    if (segment.next_child == nullptr) {
      continue;
    }
    std::set<std::string> arrays;
    for (const Stmt* stmt : segment.assigns) {
      for (const ArrayRef* ref : stmt->DirectArrayRefs()) {
        arrays.insert(ref->name);
      }
    }
    if (!arrays.empty()) {
      LockPlan lock;
      lock.host_loop_id = node.loop_id;
      lock.before_child_loop_id = segment.next_child->loop_id;
      lock.pj = static_cast<uint16_t>(node.priority_index);
      lock.arrays.assign(arrays.begin(), arrays.end());
      locks->push_back(lock);
      locked_arrays->insert(arrays.begin(), arrays.end());
    }
    BuildLocks(*segment.next_child, locks, locked_arrays);
  }
}

}  // namespace

std::vector<const LockPlan*> DirectivePlan::LocksBefore(uint32_t host, uint32_t child) const {
  std::vector<const LockPlan*> out;
  for (const LockPlan& lock : locks) {
    if (lock.host_loop_id == host && lock.before_child_loop_id == child) {
      out.push_back(&lock);
    }
  }
  return out;
}

DirectivePlan BuildDirectivePlan(const LoopTree& tree, const LocalityAnalysis& locality,
                                 const DirectivePlanOptions& options) {
  DirectivePlan plan;
  if (options.insert_allocate) {
    for (const LoopNode* node : tree.preorder()) {
      plan.allocate_before_loop.emplace(node->loop_id, BuildAllocate(*node, locality));
    }
  }
  if (options.insert_locks) {
    for (const LoopNode* root : tree.roots()) {
      std::set<std::string> locked;
      BuildLocks(*root, &plan.locks, &locked);
      if (!locked.empty()) {
        UnlockPlan unlock;
        unlock.after_loop_id = root->loop_id;
        unlock.arrays.assign(locked.begin(), locked.end());
        plan.unlock_after_loop.emplace(root->loop_id, unlock);
      }
    }
  }
  return plan;
}

DirectivePlan BuildDirectivePlan(const LoopTree& tree, const LocalityAnalysis& locality,
                                 const DependenceGraph& deps,
                                 const DirectivePlanOptions& options) {
  DirectivePlan plan = BuildDirectivePlan(tree, locality, options);
  for (const LoopNode* node : tree.preorder()) {
    if (deps.CanParallelize(node->loop_id)) {
      plan.independent_loops.insert(node->loop_id);
    }
  }

  auto in_stack = [](const DepSite& site, uint32_t loop_id) {
    return std::find(site.loop_stack.begin(), site.loop_stack.end(), loop_id) !=
           site.loop_stack.end();
  };
  // A lock on `array` earns its keep only when some dependence edge connects
  // a reference outside the child nest (the segment side) with one inside it:
  // otherwise the nest cannot disturb — or need — the segment's pages.
  for (LockPlan& lock : plan.locks) {
    std::vector<std::string> kept;
    for (const std::string& array : lock.arrays) {
      bool needed = false;
      for (const DepEdge& edge : deps.edges()) {
        if (edge.array != array) {
          continue;
        }
        const DepSite& a = deps.sites()[edge.src_site];
        const DepSite& b = deps.sites()[edge.dst_site];
        bool a_inside = in_stack(a, lock.before_child_loop_id);
        bool b_inside = in_stack(b, lock.before_child_loop_id);
        bool a_host = in_stack(a, lock.host_loop_id);
        bool b_host = in_stack(b, lock.host_loop_id);
        if ((a_host && !a_inside && b_inside) || (b_host && !b_inside && a_inside)) {
          needed = true;
          break;
        }
      }
      if (needed) {
        kept.push_back(array);
      }
    }
    lock.arrays = std::move(kept);
  }
  plan.locks.erase(std::remove_if(plan.locks.begin(), plan.locks.end(),
                                  [](const LockPlan& lock) { return lock.arrays.empty(); }),
                   plan.locks.end());

  // Recompute the trailing UNLOCK sets from what survived.
  plan.unlock_after_loop.clear();
  std::map<uint32_t, std::set<std::string>> root_arrays;
  for (const LockPlan& lock : plan.locks) {
    const LoopNode* root = &tree.node(lock.host_loop_id);
    while (root->parent != nullptr) {
      root = root->parent;
    }
    root_arrays[root->loop_id].insert(lock.arrays.begin(), lock.arrays.end());
  }
  for (const auto& [root_id, arrays] : root_arrays) {
    UnlockPlan unlock;
    unlock.after_loop_id = root_id;
    unlock.arrays.assign(arrays.begin(), arrays.end());
    plan.unlock_after_loop.emplace(root_id, unlock);
  }
  return plan;
}

namespace {

std::string AllocateToString(const AllocatePlan& plan) {
  std::vector<std::string> parts;
  parts.reserve(plan.chain.size());
  for (const AllocateRequest& req : plan.chain) {
    parts.push_back(StrCat("(", req.priority, ",", req.pages, ")"));
  }
  return StrCat("ALLOCATE ", Join(parts, " else "));
}

void ListLoop(const LoopNode& node, const DirectivePlan& plan, bool compact, int indent,
              std::ostringstream& os) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  auto alloc_it = plan.allocate_before_loop.find(node.loop_id);
  if (alloc_it != plan.allocate_before_loop.end()) {
    os << pad << AllocateToString(alloc_it->second) << "\n";
  }
  os << pad << "Loop " << node.loop->label << ";\n";
  for (const LoopNode::BodySegment& segment : node.segments) {
    if (!compact) {
      for (const Stmt* stmt : segment.assigns) {
        os << pad << "  ";
        if (stmt->lhs_array.has_value()) {
          os << stmt->lhs_array->ToString();
        } else {
          os << stmt->lhs_scalar;
        }
        os << " = " << stmt->rhs->ToString() << "\n";
      }
    }
    if (segment.next_child != nullptr) {
      for (const LockPlan* lock : plan.LocksBefore(node.loop_id, segment.next_child->loop_id)) {
        os << pad << "  LOCK (" << lock->pj << "," << Join(lock->arrays, ",") << ")\n";
      }
      ListLoop(*segment.next_child, plan, compact, indent + 1, os);
    }
  }
  os << pad << "End Loop " << node.loop->label << ";\n";
  auto unlock_it = plan.unlock_after_loop.find(node.loop_id);
  if (unlock_it != plan.unlock_after_loop.end()) {
    os << pad << "UNLOCK (" << Join(unlock_it->second.arrays, ",") << ")\n";
  }
}

}  // namespace

std::string InstrumentedListing(const LoopTree& tree, const DirectivePlan& plan, bool compact) {
  std::ostringstream os;
  for (const LoopNode* root : tree.roots()) {
    ListLoop(*root, plan, compact, 0, os);
  }
  return os.str();
}

}  // namespace cdmm
