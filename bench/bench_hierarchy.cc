// Hierarchy bench: reproduces the CD-vs-LRU/WS comparison across N-level
// hierarchy shapes and down the fault-penalty ladder (backing store at 2000,
// 200 and 20 references). The question it answers for EXPERIMENTS.md: does
// the compiler-directed advantage grow or shrink as faults get cheap?
//
// Usage: bench_hierarchy [--jobs N] [--json FILE]
//
// Every (workload, shape, policy, penalty) cell is one SweepScheduler task;
// each cell owns its HierarchySpec and the engines are deterministic, so the
// stdout is byte-identical at any --jobs (the CI golden diff relies on it).
// --json FILE additionally writes the machine-readable BENCH_hierarchy.json.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/telemetry/flags.h"
#include "src/vm/hierarchy.h"
#include "src/workloads/workloads.h"

namespace {

// elapsed(baseline) / elapsed(cd): > 1 means CD finishes sooner.
std::string Advantage(uint64_t baseline_elapsed, uint64_t cd_elapsed) {
  if (cd_elapsed == 0) {
    return "-";
  }
  double ratio = static_cast<double>(baseline_elapsed) / static_cast<double>(cd_elapsed);
  return cdmm::StrCat(cdmm::FormatFixed(ratio, 3), "x");
}

void JsonLevels(std::ostream& os, const std::vector<cdmm::HierarchyLevelTraffic>& levels) {
  os << "[";
  for (size_t i = 0; i < levels.size(); ++i) {
    const cdmm::HierarchyLevelTraffic& t = levels[i];
    os << (i == 0 ? "" : ", ") << "{\"level\": \"" << t.level << "\", \"hits\": " << t.hits
       << ", \"demotions_in\": " << t.demotions_in << ", \"evictions\": " << t.evictions
       << ", \"service_ticks\": " << t.service_ticks << "}";
  }
  os << "]";
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_hierarchy");
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_hierarchy [--jobs N] [--json FILE]\n";
      return 2;
    }
  }
  cdmm::ThreadPool pool(jobs);
  cdmm::SweepScheduler sched(&pool);

  // sws/pff are excluded on purpose: their eviction order depends on
  // unordered_map iteration, which would break the cross-stdlib golden diff.
  const std::vector<std::string> workloads = {"FDJAC", "TQL", "CONDUCT"};
  const std::vector<std::string> policies = {"cd-outer", "lru:16", "ws:2000"};
  const std::vector<uint64_t> penalties = {2000, 200, 20};
  const std::vector<std::string> shapes = {"dram-disk", "dram-nvm-disk", "dram-nvm-ssd-disk"};

  std::cout << "CD vs LRU/WS across hierarchy shapes and the fault-penalty ladder\n"
            << "shapes {" << cdmm::Join(shapes, ", ") << "}, backing store at {2000, 200, 20}\n"
            << "=================================================================\n";

  std::ostringstream json;
  json << "{\n  \"penalties\": [2000, 200, 20],\n  \"rows\": [\n";
  bool first_row = true;

  for (const std::string& name : workloads) {
    auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(name).source);
    auto program = std::make_unique<cdmm::CompiledProgram>(std::move(cp).value());
    std::shared_ptr<const cdmm::Trace> full = program->shared_trace();
    std::shared_ptr<const cdmm::Trace> refs = program->shared_references();

    for (const std::string& shape_name : shapes) {
      cdmm::HierarchySpec shape = cdmm::HierarchySpec::Parse(shape_name).value();
      std::vector<cdmm::HierarchyLadderCell> cells =
          sched.HierarchyLadder(full, refs, shape, policies, penalties);
      // Cells are policy-major: cells[p * penalties.size() + k].
      auto cell = [&](size_t policy, size_t penalty) -> const cdmm::HierarchyLadderCell& {
        return cells[policy * penalties.size() + penalty];
      };

      std::cout << "\n" << name << " on " << shape.ToString() << "\n";
      cdmm::TextTable table({"penalty", "PF (CD)", "PF (LRU)", "PF (WS)", "elapsed (CD)",
                             "elapsed (LRU)", "elapsed (WS)", "LRU/CD", "WS/CD"});
      for (size_t k = 0; k < penalties.size(); ++k) {
        const cdmm::SimResult& cd = cell(0, k).result;
        const cdmm::SimResult& lru = cell(1, k).result;
        const cdmm::SimResult& ws = cell(2, k).result;
        table.AddRow({cdmm::StrCat(penalties[k]), cdmm::StrCat(cd.faults),
                      cdmm::StrCat(lru.faults), cdmm::StrCat(ws.faults),
                      cdmm::StrCat(cd.elapsed), cdmm::StrCat(lru.elapsed),
                      cdmm::StrCat(ws.elapsed), Advantage(lru.elapsed, cd.elapsed),
                      Advantage(ws.elapsed, cd.elapsed)});
      }
      table.Print(std::cout);

      for (const cdmm::HierarchyLadderCell& c : cells) {
        json << (first_row ? "" : ",\n") << "    {\"workload\": \"" << name
             << "\", \"shape\": \"" << shape_name << "\", \"policy\": \"" << c.policy
             << "\", \"penalty\": " << c.penalty << ", \"faults\": " << c.result.faults
             << ", \"elapsed\": " << c.result.elapsed
             << ", \"max_resident\": " << c.result.max_resident << ", \"levels\": ";
        JsonLevels(json, c.result.hierarchy_levels);
        json << "}";
        first_row = false;
      }
    }
  }
  json << "\n  ]\n}\n";

  std::cout << "\nadvantage columns are baseline elapsed over CD elapsed "
               "(greater than 1 favours CD)\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str();
  }
  return 0;
}
