// Policy cross-section and simulator micro-benchmarks.
//
// Part 1 prints a cross-section of every implemented policy (LRU, FIFO, OPT,
// WS, SWS, VSWS, PFF, CD) on one workload — the baseline menagerie the
// paper's §1 surveys. Part 2 uses google-benchmark to time the simulators
// themselves (events/second), documenting the cost of each policy's
// bookkeeping.
#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <memory>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/telemetry/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/sweep_engines.h"
#include "src/vm/damped_ws.h"
#include "src/vm/pff.h"
#include "src/vm/vmin.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace {

const cdmm::CompiledProgram& Conduct() {
  static const auto* cp = [] {
    auto result = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload("CONDUCT").source);
    return new cdmm::CompiledProgram(std::move(result).value());
  }();
  return *cp;
}

const cdmm::Trace& ConductRefs() {
  static const auto* trace = new cdmm::Trace(*Conduct().shared_references());
  return *trace;
}

void PrintCrossSection(const cdmm::SweepScheduler& sched) {
  const cdmm::Trace& refs = ConductRefs();
  const cdmm::Trace& full = Conduct().trace();

  // Every policy simulation is an independent task over the shared traces;
  // results land by row index, so the table order never depends on timing.
  const std::vector<std::function<cdmm::SimResult()>> sims = {
      [&] { return cdmm::SimulateFixed(refs, 32, cdmm::Replacement::kLru); },
      [&] { return cdmm::SimulateFixed(refs, 32, cdmm::Replacement::kFifo); },
      [&] { return cdmm::SimulateFixed(refs, 32, cdmm::Replacement::kOpt); },
      [&] { return cdmm::SimulateWs(refs, 2000); },
      [&] {
        return cdmm::SimulateSampledWs(refs,
                                       {.sample_interval = 2000, .window_samples = 1});
      },
      [&] {
        return cdmm::SimulateVsws(
            refs, {.min_interval = 500, .max_interval = 4000, .fault_threshold = 8});
      },
      [&] { return cdmm::SimulatePff(refs, 2000); },
      [&] { return cdmm::SimulateDampedWs(refs, {.tau = 2000, .release_interval = 64}); },
      [&] { return cdmm::SimulateVmin(refs); },
      [&] {
        cdmm::CdOptions cd;
        cd.selection = cdmm::DirectiveSelection::kLevelCap;
        cd.level_cap = 2;
        return cdmm::SimulateCd(full, cd);
      },
  };
  std::vector<cdmm::SimResult> results =
      sched.Map<cdmm::SimResult>(sims.size(), [&](size_t i) { return sims[i](); });

  std::cout << "Policy cross-section on CONDUCT (V=" << full.virtual_pages() << " pages, R="
            << refs.reference_count() << " references)\n\n";
  cdmm::TextTable table({"Policy", "PF", "MEM", "ST x1e6", "max resident"});
  for (const cdmm::SimResult& r : results) {
    table.AddRow({r.policy, cdmm::StrCat(r.faults), cdmm::FormatFixed(r.mean_memory, 2),
                  cdmm::FormatMillions(r.space_time), cdmm::StrCat(r.max_resident)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_SimulateLru(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cdmm::SimulateFixed(refs, static_cast<uint32_t>(state.range(0)), cdmm::Replacement::kLru));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(refs.reference_count()));
}
BENCHMARK(BM_SimulateLru)->Arg(8)->Arg(64);

void BM_SimulateOpt(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::SimulateFixed(refs, 64, cdmm::Replacement::kOpt));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(refs.reference_count()));
}
BENCHMARK(BM_SimulateOpt);

void BM_SimulateWs(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::SimulateWs(refs, static_cast<uint64_t>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(refs.reference_count()));
}
BENCHMARK(BM_SimulateWs)->Arg(100)->Arg(10000);

void BM_SimulateCd(benchmark::State& state) {
  const cdmm::Trace& full = Conduct().trace();
  cdmm::CdOptions cd;
  cd.selection = cdmm::DirectiveSelection::kLevelCap;
  cd.level_cap = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::SimulateCd(full, cd));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(full.reference_count()));
}
BENCHMARK(BM_SimulateCd);

void BM_LruSweep(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::LruSweep(refs, refs.virtual_pages()));
  }
}
BENCHMARK(BM_LruSweep);

void BM_PrepareTrace(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::PreparedTrace::Build(refs).size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(refs.reference_count()));
}
BENCHMARK(BM_PrepareTrace);

void BM_OnePassWsSweep(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  const cdmm::PreparedTrace prepared = cdmm::PreparedTrace::Build(refs);
  const std::vector<uint64_t> taus = cdmm::DefaultTauGrid(refs.reference_count(), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::OnePassWsSweep(prepared, taus));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(refs.reference_count()));
}
BENCHMARK(BM_OnePassWsSweep);

void BM_OnePassOptSweep(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  const cdmm::PreparedTrace prepared = cdmm::PreparedTrace::Build(refs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::OnePassOptSweep(prepared, refs.virtual_pages()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(refs.reference_count()));
}
BENCHMARK(BM_OnePassOptSweep);

void BM_CompilePipeline(benchmark::State& state) {
  const char* source = cdmm::FindWorkload("CONDUCT").source;
  for (auto _ : state) {
    auto cp = cdmm::CompiledProgram::FromSource(source);
    benchmark::DoNotOptimize(cp.ok());
  }
}
BENCHMARK(BM_CompilePipeline);

void BM_GenerateTrace(benchmark::State& state) {
  const cdmm::CompiledProgram& cp = Conduct();
  cdmm::InterpOptions iopt;
  for (auto _ : state) {
    cdmm::Trace t = cdmm::GenerateTrace(cp.program(), cp.tree(), &cp.plan(), iopt);
    benchmark::DoNotOptimize(t.reference_count());
  }
}
BENCHMARK(BM_GenerateTrace);

}  // namespace

int main(int argc, char** argv) {
  // Strip --jobs and --sweep-engine before google-benchmark parses argv (it
  // rejects unknown flags).
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::SweepEngine engine = cdmm::ParseSweepEngineFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_policies");
  {
    cdmm::ThreadPool pool(jobs);
    PrintCrossSection(cdmm::SweepScheduler(&pool, engine));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
