// Policy cross-section and simulator micro-benchmarks.
//
// Part 1 prints a cross-section of every implemented policy (LRU, FIFO, OPT,
// WS, SWS, VSWS, PFF, CD) on one workload — the baseline menagerie the
// paper's §1 surveys. Part 2 uses google-benchmark to time the simulators
// themselves (events/second), documenting the cost of each policy's
// bookkeeping.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/cdmm/pipeline.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/damped_ws.h"
#include "src/vm/pff.h"
#include "src/vm/vmin.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace {

const cdmm::CompiledProgram& Conduct() {
  static const auto* cp = [] {
    auto result = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload("CONDUCT").source);
    return new cdmm::CompiledProgram(std::move(result).value());
  }();
  return *cp;
}

const cdmm::Trace& ConductRefs() {
  static const auto* trace = new cdmm::Trace(Conduct().trace().ReferencesOnly());
  return *trace;
}

void PrintCrossSection() {
  const cdmm::Trace& refs = ConductRefs();
  const cdmm::Trace& full = Conduct().trace();

  std::vector<cdmm::SimResult> results;
  results.push_back(cdmm::SimulateFixed(refs, 32, cdmm::Replacement::kLru));
  results.push_back(cdmm::SimulateFixed(refs, 32, cdmm::Replacement::kFifo));
  results.push_back(cdmm::SimulateFixed(refs, 32, cdmm::Replacement::kOpt));
  results.push_back(cdmm::SimulateWs(refs, 2000));
  results.push_back(cdmm::SimulateSampledWs(refs, {.sample_interval = 2000, .window_samples = 1}));
  results.push_back(cdmm::SimulateVsws(
      refs, {.min_interval = 500, .max_interval = 4000, .fault_threshold = 8}));
  results.push_back(cdmm::SimulatePff(refs, 2000));
  results.push_back(cdmm::SimulateDampedWs(refs, {.tau = 2000, .release_interval = 64}));
  results.push_back(cdmm::SimulateVmin(refs));
  cdmm::CdOptions cd;
  cd.selection = cdmm::DirectiveSelection::kLevelCap;
  cd.level_cap = 2;
  results.push_back(cdmm::SimulateCd(full, cd));

  std::cout << "Policy cross-section on CONDUCT (V=" << full.virtual_pages() << " pages, R="
            << refs.reference_count() << " references)\n\n";
  cdmm::TextTable table({"Policy", "PF", "MEM", "ST x1e6", "max resident"});
  for (const cdmm::SimResult& r : results) {
    table.AddRow({r.policy, cdmm::StrCat(r.faults), cdmm::FormatFixed(r.mean_memory, 2),
                  cdmm::FormatMillions(r.space_time), cdmm::StrCat(r.max_resident)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_SimulateLru(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cdmm::SimulateFixed(refs, static_cast<uint32_t>(state.range(0)), cdmm::Replacement::kLru));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(refs.reference_count()));
}
BENCHMARK(BM_SimulateLru)->Arg(8)->Arg(64);

void BM_SimulateOpt(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::SimulateFixed(refs, 64, cdmm::Replacement::kOpt));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(refs.reference_count()));
}
BENCHMARK(BM_SimulateOpt);

void BM_SimulateWs(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::SimulateWs(refs, static_cast<uint64_t>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(refs.reference_count()));
}
BENCHMARK(BM_SimulateWs)->Arg(100)->Arg(10000);

void BM_SimulateCd(benchmark::State& state) {
  const cdmm::Trace& full = Conduct().trace();
  cdmm::CdOptions cd;
  cd.selection = cdmm::DirectiveSelection::kLevelCap;
  cd.level_cap = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::SimulateCd(full, cd));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(full.reference_count()));
}
BENCHMARK(BM_SimulateCd);

void BM_LruSweep(benchmark::State& state) {
  const cdmm::Trace& refs = ConductRefs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdmm::LruSweep(refs, refs.virtual_pages()));
  }
}
BENCHMARK(BM_LruSweep);

void BM_CompilePipeline(benchmark::State& state) {
  const char* source = cdmm::FindWorkload("CONDUCT").source;
  for (auto _ : state) {
    auto cp = cdmm::CompiledProgram::FromSource(source);
    benchmark::DoNotOptimize(cp.ok());
  }
}
BENCHMARK(BM_CompilePipeline);

void BM_GenerateTrace(benchmark::State& state) {
  const cdmm::CompiledProgram& cp = Conduct();
  cdmm::InterpOptions iopt;
  for (auto _ : state) {
    cdmm::Trace t = cdmm::GenerateTrace(cp.program(), cp.tree(), &cp.plan(), iopt);
    benchmark::DoNotOptimize(t.reference_count());
  }
}
BENCHMARK(BM_GenerateTrace);

}  // namespace

int main(int argc, char** argv) {
  PrintCrossSection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
