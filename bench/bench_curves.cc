// Characteristic-curve bench: draws the era-standard instruments (the
// Denning–Kahn lifetime function, the LRU fault-rate curve, and the WS
// characteristic) for three representative workloads, and marks where the
// CD directive sets place the program relative to the lifetime knee. The
// paper has no result figures; these are the figures its contemporaries
// would have drawn from the same data.
//
// The full per-workload LRU+WS sweep fans out over --jobs threads (default:
// all cores): workloads render concurrently and every WS window is its own
// task, all reading one shared immutable trace. Output is byte-identical to
// --jobs 1 — sections are buffered and emitted in workload order.
#include <chrono>
#include <iostream>
#include <sstream>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/telemetry/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/support/ascii_plot.h"
#include "src/support/str.h"
#include "src/vm/cd_policy.h"
#include "src/vm/curves.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace {

std::string CurvesFor(const std::string& name, const cdmm::SweepScheduler& sched) {
  std::ostringstream out;
  auto compiled = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(name).source);
  const cdmm::CompiledProgram& cp = compiled.value();
  std::shared_ptr<const cdmm::Trace> refs = cp.shared_references();
  uint32_t v = refs->virtual_pages();

  auto lifetime = cdmm::LifetimeCurve(sched.Lru(refs, v), refs->reference_count());
  uint32_t knee = cdmm::LifetimeKnee(lifetime);

  cdmm::PlotOptions popts;
  popts.log_y = true;
  popts.title = cdmm::StrCat("Lifetime function g(m), ", name, " (V=", v,
                             " pages; knee at m=", knee, ")");
  popts.x_label = "allocation m (pages)";
  popts.y_label = "mean refs between faults, log";
  cdmm::PlotSeries g{"g(m) under LRU", '*', {}};
  for (const cdmm::CurvePoint& p : lifetime) {
    g.points.emplace_back(p.x, p.y);
  }

  // The OPT yardstick: the same lifetime function under Belady's MIN — the
  // unreachable upper bound the replacement policies are measured against.
  cdmm::PlotSeries g_opt{"g(m) under OPT (yardstick)", '.', {}};
  for (const cdmm::CurvePoint& p :
       cdmm::LifetimeCurve(sched.Opt(refs, v), refs->reference_count())) {
    g_opt.points.emplace_back(p.x, p.y);
  }

  // Mark the CD operating points (mean memory, achieved lifetime); the three
  // selections are independent simulations over the shared directive trace.
  const std::vector<cdmm::DirectiveSelection> selections = {
      cdmm::DirectiveSelection::kOutermost, cdmm::DirectiveSelection::kLevelCap,
      cdmm::DirectiveSelection::kInnermost};
  std::shared_ptr<const cdmm::Trace> full = cp.shared_trace();
  std::vector<cdmm::SimResult> cd_runs = sched.Map<cdmm::SimResult>(
      selections.size(), [&](size_t i) {
        cdmm::CdOptions options;
        options.selection = selections[i];
        options.level_cap = 2;
        return cdmm::SimulateCd(*full, options);
      });
  cdmm::PlotSeries cd{"CD operating points (outer/cap2/inner)", 'o', {}};
  for (const cdmm::SimResult& r : cd_runs) {
    double life = r.faults == 0 ? static_cast<double>(r.references)
                                : static_cast<double>(r.references) / r.faults;
    cd.points.emplace_back(r.mean_memory, life);
  }
  out << RenderAsciiPlot({g, g_opt, cd}, popts) << "\n";

  auto taus = cdmm::DefaultTauGrid(refs->reference_count(), 6);
  cdmm::PlotOptions wopts;
  wopts.log_x = true;
  wopts.title = cdmm::StrCat("WS characteristic, ", name, " (mean WS size vs window)");
  wopts.x_label = "window tau (references, log)";
  wopts.y_label = "mean WS size (pages)";
  cdmm::PlotSeries s{"s(tau)", '+', {}};
  for (const cdmm::CurvePoint& p : cdmm::WsSizeCurve(sched.Ws(refs, taus))) {
    s.points.emplace_back(p.x, p.y);
  }
  out << RenderAsciiPlot({s}, wopts) << "\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::SweepEngine engine = cdmm::ParseSweepEngineFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_curves");
  cdmm::ThreadPool pool(jobs);
  cdmm::SweepScheduler sched(&pool, engine);

  auto start = std::chrono::steady_clock::now();
  std::cout << "Characteristic curves (lifetime / WS) with CD operating points\n"
            << "==============================================================\n\n";
  const std::vector<std::string> names = {"CONDUCT", "HWSCRT", "MAIN"};
  std::vector<std::string> sections = sched.Map<std::string>(
      names.size(), [&](size_t i) { return CurvesFor(names[i], sched); });
  for (const std::string& section : sections) {
    std::cout << section;
  }
  std::cout << "Reading: CD's outer points sit at the flat top of the lifetime curve\n"
               "(few faults, many pages); inner points sit left of the knee (small\n"
               "footprint, fault-tolerant); the level-cap points track the knee itself —\n"
               "the compile-time directives recover what the lifetime instrumentation\n"
               "would have to measure at run time.\n";
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  std::cerr << "[bench_curves] jobs=" << jobs << " wall=" << elapsed.count() << "ms\n";
  return 0;
}
