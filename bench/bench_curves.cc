// Characteristic-curve bench: draws the era-standard instruments (the
// Denning–Kahn lifetime function, the LRU fault-rate curve, and the WS
// characteristic) for three representative workloads, and marks where the
// CD directive sets place the program relative to the lifetime knee. The
// paper has no result figures; these are the figures its contemporaries
// would have drawn from the same data.
#include <iostream>

#include "src/cdmm/pipeline.h"
#include "src/support/ascii_plot.h"
#include "src/support/str.h"
#include "src/vm/cd_policy.h"
#include "src/vm/curves.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace {

void CurvesFor(const std::string& name) {
  auto compiled = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(name).source);
  const cdmm::CompiledProgram& cp = compiled.value();
  cdmm::Trace refs = cp.trace().ReferencesOnly();
  uint32_t v = refs.virtual_pages();

  auto lifetime = cdmm::LifetimeCurve(refs, v);
  uint32_t knee = cdmm::LifetimeKnee(lifetime);

  cdmm::PlotOptions popts;
  popts.log_y = true;
  popts.title = cdmm::StrCat("Lifetime function g(m), ", name, " (V=", v,
                             " pages; knee at m=", knee, ")");
  popts.x_label = "allocation m (pages)";
  popts.y_label = "mean refs between faults, log";
  cdmm::PlotSeries g{"g(m) under LRU", '*', {}};
  for (const cdmm::CurvePoint& p : lifetime) {
    g.points.emplace_back(p.x, p.y);
  }

  // Mark the CD operating points (mean memory, achieved lifetime).
  cdmm::PlotSeries cd{"CD operating points (outer/cap2/inner)", 'o', {}};
  for (auto sel : {cdmm::DirectiveSelection::kOutermost, cdmm::DirectiveSelection::kLevelCap,
                   cdmm::DirectiveSelection::kInnermost}) {
    cdmm::CdOptions options;
    options.selection = sel;
    options.level_cap = 2;
    cdmm::SimResult r = cdmm::SimulateCd(cp.trace(), options);
    double life = r.faults == 0 ? static_cast<double>(r.references)
                                : static_cast<double>(r.references) / r.faults;
    cd.points.emplace_back(r.mean_memory, life);
  }
  std::cout << RenderAsciiPlot({g, cd}, popts) << "\n";

  auto taus = cdmm::DefaultTauGrid(refs.reference_count(), 6);
  cdmm::PlotOptions wopts;
  wopts.log_x = true;
  wopts.title = cdmm::StrCat("WS characteristic, ", name, " (mean WS size vs window)");
  wopts.x_label = "window tau (references, log)";
  wopts.y_label = "mean WS size (pages)";
  cdmm::PlotSeries s{"s(tau)", '+', {}};
  for (const cdmm::CurvePoint& p : cdmm::WsSizeCurve(refs, taus)) {
    s.points.emplace_back(p.x, p.y);
  }
  std::cout << RenderAsciiPlot({s}, wopts) << "\n";
}

}  // namespace

int main() {
  std::cout << "Characteristic curves (lifetime / WS) with CD operating points\n"
            << "==============================================================\n\n";
  for (const char* name : {"CONDUCT", "HWSCRT", "MAIN"}) {
    CurvesFor(name);
  }
  std::cout << "Reading: CD's outer points sit at the flat top of the lifetime curve\n"
               "(few faults, many pages); inner points sit left of the knee (small\n"
               "footprint, fault-tolerant); the level-cap points track the knee itself —\n"
               "the compile-time directives recover what the lifetime instrumentation\n"
               "would have to measure at run time.\n";
  return 0;
}
