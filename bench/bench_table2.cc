// Reproduces Table 2: "Comparing Minimal Space Time Cost Values of LRU and
// WS versus CD". For every program the LRU partition m and the WS window τ
// are swept to their minimum-ST operating points; %ST reports the excess of
// that minimum over CD's ST at the paper's per-program directive set.
#include <cstdio>
#include <iostream>
#include <map>

#include "src/cdmm/experiments.h"
#include "src/exec/flags.h"
#include "src/telemetry/flags.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

namespace {

struct PaperRow {
  int pct_lru;
  int pct_ws;
};

// Table 2 of the paper (%ST, LRU vs CD and WS vs CD).
const std::map<std::string, PaperRow> kPaper = {
    {"MAIN3", {47, 17}},  {"FDJAC", {27, 39}},   {"FIELD-I", {23, 6}}, {"INIT-I", {133, 22}},
    {"APPROX", {36, 58}}, {"HYBRJ", {31, 32}},   {"CONDUCT", {288, 32}}, {"TQL1", {7, 4}},
};

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::SweepEngine engine = cdmm::ParseSweepEngineFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_table2");
  cdmm::ThreadPool pool(jobs);
  std::cout << "Table 2: Comparing Minimal Space Time Cost Values of LRU and WS versus CD\n"
            << "%ST = (ST_min(other) - ST(CD)) / ST(CD) * 100   (paper values in parentheses;\n"
            << " the OPT-min column is the fixed-space optimum — Belady's MIN yardstick)\n\n";

  cdmm::ExperimentRunner runner({}, {}, &pool, engine);
  runner.Prefetch(cdmm::Table2Variants());
  cdmm::TextTable table({"Program", "ST CD x1e6", "ST LRU-min x1e6", "ST WS-min x1e6",
                         "ST OPT-min x1e6", "%ST LRU (paper)", "%ST WS (paper)"});
  double sum_lru = 0.0;
  double sum_ws = 0.0;
  for (const cdmm::WorkloadVariant& variant : cdmm::Table2Variants()) {
    auto row = runner.MinStComparison(variant);
    const PaperRow& p = kPaper.at(variant.variant_name);
    table.AddRow({row.variant, cdmm::FormatMillions(row.st_cd),
                  cdmm::FormatMillions(row.st_lru), cdmm::FormatMillions(row.st_ws),
                  cdmm::FormatMillions(row.st_opt),
                  cdmm::StrCat(cdmm::FormatFixed(row.pct_st_lru, 1), " (", p.pct_lru, ")"),
                  cdmm::StrCat(cdmm::FormatFixed(row.pct_st_ws, 1), " (", p.pct_ws, ")")});
    sum_lru += row.pct_st_lru;
    sum_ws += row.pct_st_ws;
  }
  table.Print(std::cout);
  std::printf("\nMean %%ST over the 8 rows: LRU %+.1f%%, WS %+.1f%% (paper: all-positive rows,\n"
              "LRU 7..288%%, WS 4..58%%). Where our rows sit near zero the fixed policies'\n"
              "best operating point matches CD's inner directive set; the decisive CD win\n"
              "(CONDUCT) comes from phase-adaptive allocation no fixed point can match.\n",
              sum_lru / 8.0, sum_ws / 8.0);
  return 0;
}
