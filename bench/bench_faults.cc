// Fault-injection bench: sweeps the deterministic injector's intensity knob
// and prints how gracefully the CD memory manager and the WS load-control
// baseline degrade under adversity — perturbed/heavy-tailed fault service,
// transient swap-device failures with bounded backoff, and frame-pool
// pressure spikes — with the thrashing detector's load control enabled.
//
// Usage: bench_faults [--jobs N] [--inject-seed N]
//
// Every (intensity, manager) cell is one task over the --jobs pool; each
// task builds its own injector from (seed, intensity), and every injection
// decision is a pure function of that seed, so the output is byte-identical
// at any thread count.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/telemetry/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/os/multiprog.h"
#include "src/robust/fault_injector.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

namespace {

std::string Pct(uint64_t value, uint64_t base) {
  if (base == 0) {
    return "-";
  }
  double pct = (static_cast<double>(value) / static_cast<double>(base) - 1.0) * 100.0;
  return cdmm::StrCat(pct >= 0 ? "+" : "", cdmm::FormatFixed(pct, 1), "%");
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::SweepEngine engine = cdmm::ParseSweepEngineFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_faults");
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--inject-seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::cerr << "usage: bench_faults [--jobs N] [--inject-seed N]\n";
      return 2;
    }
  }
  cdmm::ThreadPool pool(jobs);
  cdmm::SweepScheduler sched(&pool, engine);

  const std::vector<std::string> names = {"INIT", "APPROX", "HYBRJ"};
  const uint32_t frames = 96;
  std::vector<std::unique_ptr<cdmm::CompiledProgram>> programs;
  std::vector<cdmm::OsProcessSpec> specs;
  int priority = 0;
  for (const std::string& name : names) {
    auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(name).source);
    programs.push_back(std::make_unique<cdmm::CompiledProgram>(std::move(cp).value()));
    specs.push_back(cdmm::OsProcessSpec{name, &programs.back()->trace(), priority++});
  }

  const std::vector<double> intensities = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::cout << "Graceful degradation under deterministic fault injection (seed " << seed
            << ")\n"
            << "mix {" << cdmm::Join(names, ", ") << "} on " << frames
            << " frames, load control on\n"
            << "==============================================================\n\n";

  // One task per (intensity, manager) cell; each OS run is serial inside its
  // task and the injector is pure, so any --jobs gives identical numbers.
  std::vector<cdmm::OsRunResult> cells =
      sched.Map<cdmm::OsRunResult>(intensities.size() * 2, [&](size_t k) {
        double intensity = intensities[k / 2];
        cdmm::FaultInjector injector(cdmm::FaultInjectionConfig::AtIntensity(seed, intensity));
        cdmm::OsOptions options;
        options.total_frames = frames;
        options.load_control = true;
        options.injector = injector.enabled() ? &injector : nullptr;
        return k % 2 == 0
                   ? cdmm::RunMultiprogrammedCd(specs, options).value()
                   : cdmm::RunMultiprogrammedWs(specs, options, /*tau=*/2000).value();
      });

  cdmm::TextTable table({"intensity", "makespan (CD)", "makespan (WS)", "PF (CD)", "PF (WS)",
                         "CPU% (CD)", "CPU% (WS)", "swapfail", "spikes", "LC susp"});
  for (size_t i = 0; i < intensities.size(); ++i) {
    const cdmm::OsRunResult& cd = cells[2 * i];
    const cdmm::OsRunResult& ws = cells[2 * i + 1];
    table.AddRow({cdmm::FormatFixed(intensities[i], 2), cdmm::StrCat(cd.total_time),
                  cdmm::StrCat(ws.total_time), cdmm::StrCat(cd.total_faults),
                  cdmm::StrCat(ws.total_faults),
                  cdmm::FormatFixed(cd.cpu_utilisation * 100, 1),
                  cdmm::FormatFixed(ws.cpu_utilisation * 100, 1),
                  cdmm::StrCat(cd.swap_device_failures + ws.swap_device_failures),
                  cdmm::StrCat(std::max(cd.phantom_peak_frames, ws.phantom_peak_frames)),
                  cdmm::StrCat(cd.load_control_suspensions + ws.load_control_suspensions)});
  }
  table.Print(std::cout);

  std::cout << "\nmakespan degradation vs intensity 0 (lower is more robust)\n";
  cdmm::TextTable curves({"intensity", "CD", "WS"});
  for (size_t i = 0; i < intensities.size(); ++i) {
    curves.AddRow({cdmm::FormatFixed(intensities[i], 2),
                   Pct(cells[2 * i].total_time, cells[0].total_time),
                   Pct(cells[2 * i + 1].total_time, cells[1].total_time)});
  }
  curves.Print(std::cout);
  std::cout << "\nno run aborted: every process completed or was accounted as a structured "
               "failure\n";
  return 0;
}
