// Scaling-ladder bench for the analytic locality engine. Runs the same
// time-loop kernel at geometrically growing trip counts — the top rung
// expands to 5.76e9 references, past what a flat Trace can even index — and
// measures model build + WS + OPT sweep wall time per rung. Because the
// folded representation is O(program size) for this affine kernel, the
// wall times must stay flat as the reference count grows five orders of
// magnitude: that flatness is the trace-length-independence gate
// tools/bench_analytic.py enforces and BENCH_analytic.json records.
//
// The deterministic section (reference counts, stored sizes, curve
// fingerprints, the oracle comparison on the smallest rung) is a pure
// function of the kernel and is replay-gated against the committed
// baseline; only the wall times are machine-dependent.
//
// Usage: bench_analytic [--out FILE] [--deterministic-only]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/analytic_locality.h"
#include "src/interp/interpreter.h"
#include "src/interp/rle_generator.h"
#include "src/support/str.h"
#include "src/telemetry/flags.h"
#include "src/vm/sweep_engines.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace {

std::string HexU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string RungSource(uint64_t trips) {
  return cdmm::StrCat(
      "      PROGRAM LADDER\n"
      "      DIMENSION A(64,4)\n"
      "      DO 20 T = 1, ", trips, "\n"
      "        DO 10 I = 1, 64\n"
      "          A(I,1) = A(I,2) + A(I,3)\n"
      "   10   CONTINUE\n"
      "   20 CONTINUE\n"
      "      END\n");
}

struct Rung {
  uint64_t trips = 0;
  uint64_t refs = 0;
  uint64_t stored_pages = 0;
  uint64_t nodes = 0;
  uint64_t ws_fp = 0;
  uint64_t opt_fp = 0;
  double wall_ms = 0;  // model build + WS sweep + OPT sweep
};

}  // namespace

int main(int argc, char** argv) {
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_analytic");
  bool deterministic_only = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--deterministic-only") {
      deterministic_only = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_analytic [--out FILE] [--deterministic-only]\n";
      return 2;
    }
  }

  // 1e2 .. 3e7 trips: 1.92e4 .. 5.76e9 expanded references. The top rung's
  // reference string cannot exist as a flat Trace (32-bit event index); the
  // analytic engine answers it from a few hundred stored pages.
  const std::vector<uint64_t> kTrips = {100, 10'000, 1'000'000, 30'000'000};
  std::vector<Rung> rungs;
  for (uint64_t trips : kTrips) {
    std::string source = RungSource(trips);
    cdmm::Workload w{"LADDER", "scaling rung", source.c_str()};
    cdmm::Program program = cdmm::ParseWorkload(w);

    auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<const cdmm::AnalyticLocality> model =
        cdmm::AnalyticLocality::Build(cdmm::GenerateLoopRle(program));
    std::vector<cdmm::SweepPoint> ws =
        model->WsSweep(cdmm::DefaultTauGrid(std::max<uint64_t>(model->total_refs(), 1), 12));
    std::vector<cdmm::SweepPoint> opt =
        model->OptSweep(std::max(model->virtual_pages(), 1u));
    auto t1 = std::chrono::steady_clock::now();

    Rung r;
    r.trips = trips;
    r.refs = model->total_refs();
    r.stored_pages = model->rle().stored_pages();
    r.nodes = model->rle().node_count();
    r.ws_fp = cdmm::FingerprintSweep(ws);
    r.opt_fp = cdmm::FingerprintSweep(opt);
    r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    rungs.push_back(r);
  }

  // Oracle: on the smallest rung the trace is small enough to expand; the
  // analytic fingerprints must equal the one-pass ones bit for bit.
  bool oracle_match = false;
  {
    std::string source = RungSource(kTrips.front());
    cdmm::Workload w{"LADDER", "oracle rung", source.c_str()};
    cdmm::Program program = cdmm::ParseWorkload(w);
    cdmm::LoopRleTrace rle = cdmm::GenerateLoopRle(program);
    cdmm::Trace flat = rle.Expand();
    uint64_t ws_fp = cdmm::FingerprintSweep(cdmm::OnePassWsSweep(
        flat, cdmm::DefaultTauGrid(std::max<uint64_t>(flat.reference_count(), 1), 12)));
    uint64_t opt_fp = cdmm::FingerprintSweep(
        cdmm::OnePassOptSweep(flat, std::max(flat.virtual_pages(), 1u)));
    oracle_match = ws_fp == rungs.front().ws_fp && opt_fp == rungs.front().opt_fp;
  }

  std::string det = "{\"oracle_match\":";
  det += oracle_match ? "true" : "false";
  det += ",\"rungs\":[";
  for (size_t i = 0; i < rungs.size(); ++i) {
    const Rung& r = rungs[i];
    det += cdmm::StrCat(i == 0 ? "" : ",", "{\"trips\":", r.trips, ",\"refs\":", r.refs,
                        ",\"stored_pages\":", r.stored_pages, ",\"nodes\":", r.nodes,
                        ",\"ws_fingerprint\":\"", HexU64(r.ws_fp),
                        "\",\"opt_fingerprint\":\"", HexU64(r.opt_fp), "\"}");
  }
  det += "]}";

  if (deterministic_only) {
    std::cout << det << "\n";
    return 0;
  }

  std::string runtime = "{\"rung_wall_ms\":[";
  for (size_t i = 0; i < rungs.size(); ++i) {
    runtime += cdmm::StrCat(i == 0 ? "" : ",", cdmm::FormatFixed(rungs[i].wall_ms, 3));
  }
  runtime += "]}";

  std::string doc = cdmm::StrCat("{\"bench\":\"analytic\",\"deterministic\":", det,
                                 ",\"runtime\":", runtime, "}");
  std::cout << doc << "\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc << "\n";
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 1;
    }
  }
  return 0;
}
