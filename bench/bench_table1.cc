// Reproduces Table 1 of Malkawi & Patel (SOSP'85): "The Effect of Executing
// Different Sets of Directives Under CD Policy". Each row runs the same
// program under a different honoured directive set (see
// workloads.h::Table1Variants) and reports MEM / PF / ST.
//
// The paper's absolute numbers (from 1985 traces that no longer exist) are
// printed alongside for shape comparison: outer-level sets must use more
// memory and fault less; inner-level sets the reverse.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "src/cdmm/experiments.h"
#include "src/exec/flags.h"
#include "src/telemetry/flags.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

namespace {

struct PaperRow {
  double mem;
  int pf;
  double st_millions;
};

// Table 1 of the paper.
const std::map<std::string, PaperRow> kPaper = {
    {"MAIN", {1.62, 531, 3.39}},   {"MAIN1", {20.37, 144, 3.89}},
    {"MAIN2", {12.23, 319, 10.6}}, {"MAIN3", {1.11, 652, 2.77}},
    {"FDJAC", {2.47, 178, 1.46}},  {"FDJAC1", {3.11, 175, 2.04}},
    {"TQL1", {2.48, 322, 2.84}},   {"TQL2", {2.02, 421, 3.063}},
};

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::SweepEngine engine = cdmm::ParseSweepEngineFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_table1");
  cdmm::ThreadPool pool(jobs);
  std::cout << "Table 1: The Effect of Executing Different Sets of Directives Under CD Policy\n"
            << "(paper values in parentheses; shape comparison only — the 1985 traces are\n"
            << " not recoverable, see EXPERIMENTS.md. PF OPT@MEM is the yardstick: Belady's\n"
            << " MIN given a fixed partition of round(MEM) frames)\n\n";

  cdmm::ExperimentRunner runner({}, {}, &pool, engine);
  runner.Prefetch(cdmm::Table1Variants());
  cdmm::TextTable table({"Program", "Directive set", "MEM (paper)", "PF (paper)",
                         "ST x1e6 (paper)", "PF OPT@MEM"});
  for (const cdmm::WorkloadVariant& variant : cdmm::Table1Variants()) {
    const cdmm::SimResult& r = runner.RunCd(variant);
    const PaperRow& p = kPaper.at(variant.variant_name);
    std::string set_name = cdmm::StrCat(
        cdmm::DirectiveSelectionName(variant.selection),
        variant.selection == cdmm::DirectiveSelection::kLevelCap
            ? cdmm::StrCat("(", variant.level_cap, ")")
            : "",
        variant.honor_locks ? "" : ", no locks");
    // OPT at CD's average memory, read off the one-pass OPT curve.
    uint32_t v = runner.compiled(variant.workload).virtual_pages();
    uint32_t opt_frames = static_cast<uint32_t>(
        std::clamp<int64_t>(std::llround(r.mean_memory), 1, static_cast<int64_t>(v)));
    const cdmm::SweepPoint& opt = runner.OptCurve(variant.workload)[opt_frames - 1];
    table.AddRow({variant.variant_name, set_name,
                  cdmm::StrCat(cdmm::FormatFixed(r.mean_memory, 2), " (",
                               cdmm::FormatFixed(p.mem, 2), ")"),
                  cdmm::StrCat(r.faults, " (", p.pf, ")"),
                  cdmm::StrCat(cdmm::FormatMillions(r.space_time), " (",
                               cdmm::FormatFixed(p.st_millions, 2), ")"),
                  cdmm::StrCat(opt.faults, " @m=", opt_frames)});
  }
  table.Print(std::cout);

  std::cout << "\nShape checks (paper's qualitative claims):\n";
  auto mem = [&](const char* v) { return runner.RunCd(cdmm::FindVariant(v)).mean_memory; };
  auto pf = [&](const char* v) { return runner.RunCd(cdmm::FindVariant(v)).faults; };
  std::printf("  outer sets use more memory:    MAIN1 %.1f > MAIN %.1f > MAIN2 %.1f > MAIN3 %.1f  %s\n",
              mem("MAIN1"), mem("MAIN"), mem("MAIN2"), mem("MAIN3"),
              mem("MAIN1") > mem("MAIN2") && mem("MAIN2") > mem("MAIN3") ? "[ok]" : "[DIFFERS]");
  std::printf("  outer sets fault less:         MAIN1 %llu < MAIN2 %llu < MAIN3 %llu  %s\n",
              (unsigned long long)pf("MAIN1"), (unsigned long long)pf("MAIN2"),
              (unsigned long long)pf("MAIN3"),
              pf("MAIN1") < pf("MAIN2") && pf("MAIN2") <= pf("MAIN3") ? "[ok]" : "[DIFFERS]");
  auto st = [&](const char* v) { return runner.RunCd(cdmm::FindVariant(v)).space_time; };
  std::printf("  inner sets reach the lowest ST (paper: MAIN3 < MAIN < MAIN1): %.2fM < %.2fM  %s\n",
              st("MAIN3") / 1e6, st("MAIN1") / 1e6,
              st("MAIN3") < st("MAIN1") ? "[ok]" : "[DIFFERS]");
  return 0;
}
