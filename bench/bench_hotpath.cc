// Hot-path ratchet bench: times the flat SoA kernels (src/vm/fixed_alloc.cc,
// working_set.cc, cd_policy.cc over the flat CdCore) against the preserved
// container-based originals (src/vm/legacy_sim.cc) in the same process, on
// the same traces. Reporting ns/ref for both sides makes the speedup ratio
// machine-independent — tools/bench_hotpath.py gates on the geometric-mean
// aggregate (>= 1.5x) instead of absolute nanoseconds, so the CI ratchet
// holds on any hardware.
//
// Usage: bench_hotpath [--json FILE] [--reps N]
//
// Before timing, every cell proves the two implementations bit-identical
// (every SimResult field); a mismatch is a hard failure. Those per-cell
// simulation results form the deterministic section of the JSON, which the
// gate also diffs against the committed BENCH_hotpath.json baseline.
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/telemetry/flags.h"
#include "src/trace/prepared_trace.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/legacy_sim.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Cell {
  std::string workload;
  std::string policy;
  cdmm::SimResult result;     // deterministic (identical for both sides)
  double legacy_ns_per_ref = 0.0;
  double hot_ns_per_ref = 0.0;
  double speedup = 0.0;
};

bool SameResult(const cdmm::SimResult& a, const cdmm::SimResult& b, std::string* why) {
  auto fail = [&](const char* field) {
    *why = field;
    return false;
  };
  if (a.policy != b.policy) return fail("policy");
  if (a.references != b.references) return fail("references");
  if (a.faults != b.faults) return fail("faults");
  if (a.elapsed != b.elapsed) return fail("elapsed");
  if (a.space_time != b.space_time) return fail("space_time");
  if (a.mean_memory != b.mean_memory) return fail("mean_memory");
  if (a.max_resident != b.max_resident) return fail("max_resident");
  if (a.directives_processed != b.directives_processed) return fail("directives_processed");
  if (a.lock_releases != b.lock_releases) return fail("lock_releases");
  if (a.allocation_shrinks != b.allocation_shrinks) return fail("allocation_shrinks");
  if (a.hierarchy_levels != b.hierarchy_levels) return fail("hierarchy_levels");
  return true;
}

// Minimum wall time per call over `reps` measurements, in ns. The minimum
// (not the mean) is the standard noise filter for in-process microbenchmarks:
// interference only ever adds time. Short traces finish in microseconds —
// below clock granularity — so each measurement loops the call enough times
// to last ~2ms and divides back out.
template <typename Fn>
double TimeNs(int reps, Fn&& fn) {
  auto t0 = Clock::now();
  fn();
  auto t1 = Clock::now();
  const double est = std::max<double>(
      1.0, static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  const int iters = static_cast<int>(std::min<double>(10000.0, std::max(1.0, 2e6 / est)));
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    t1 = Clock::now();
    double ns = static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
                static_cast<double>(iters);
    if (r == 0 || ns < best) {
      best = ns;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_hotpath");
  std::string json_path;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else {
      std::cerr << "usage: bench_hotpath [--json FILE] [--reps N]\n";
      return 2;
    }
  }

  const std::vector<std::string> workloads = {"CONDUCT", "MATMULB", "SORRB"};
  std::vector<Cell> cells;

  std::cout << "flat SoA kernels vs the preserved container-based simulators\n"
            << "ns/ref = min wall time over " << reps << " reps / reference count\n"
            << "============================================================\n";

  for (const std::string& name : workloads) {
    auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(name).source);
    auto program = std::make_unique<cdmm::CompiledProgram>(std::move(cp).value());
    std::shared_ptr<const cdmm::Trace> full = program->shared_trace();
    std::shared_ptr<const cdmm::Trace> refs = program->shared_references();
    cdmm::PreparedTrace prepared = cdmm::PreparedTrace::Build(*refs);
    const double r = static_cast<double>(prepared.size());

    // One (label, legacy runner, hot runner) triple per policy cell.
    struct Variant {
      std::string policy;
      std::function<cdmm::SimResult()> legacy;
      std::function<cdmm::SimResult()> hot;
    };
    cdmm::CdOptions cd;  // cd-outer: defaults
    std::vector<Variant> variants;
    auto add_fixed = [&](const char* label, cdmm::Replacement repl) {
      variants.push_back(Variant{
          label,
          [&prepared, repl] { return cdmm::legacy::SimulateFixed(prepared, 16, repl); },
          [&prepared, repl] { return cdmm::SimulateFixed(prepared, 16, repl); }});
    };
    add_fixed("lru:16", cdmm::Replacement::kLru);
    add_fixed("fifo:16", cdmm::Replacement::kFifo);
    add_fixed("opt:16", cdmm::Replacement::kOpt);
    variants.push_back(Variant{
        "ws:2000",
        [&refs] { return cdmm::legacy::SimulateWs(*refs, 2000); },
        [&refs] { return cdmm::SimulateWs(*refs, 2000); }});
    variants.push_back(Variant{
        "cd-outer",
        [&full, &cd] { return cdmm::legacy::SimulateCd(*full, cd); },
        [&full, &cd] { return cdmm::SimulateCd(*full, cd); }});

    std::cout << "\n" << name << " (" << prepared.size() << " references)\n";
    cdmm::TextTable table({"policy", "faults", "legacy ns/ref", "hot ns/ref", "speedup"});
    for (const Variant& v : variants) {
      // Equality first (also warms both paths).
      cdmm::SimResult legacy_result = v.legacy();
      cdmm::SimResult hot_result = v.hot();
      std::string why;
      if (!SameResult(legacy_result, hot_result, &why)) {
        std::cerr << "FATAL: " << name << "/" << v.policy
                  << ": hot kernel diverges from legacy in field '" << why << "'\n";
        return 1;
      }
      Cell cell;
      cell.workload = name;
      cell.policy = v.policy;
      cell.result = hot_result;
      cell.legacy_ns_per_ref = TimeNs(reps, v.legacy) / r;
      cell.hot_ns_per_ref = TimeNs(reps, v.hot) / r;
      cell.speedup = cell.hot_ns_per_ref == 0.0
                         ? 1.0
                         : cell.legacy_ns_per_ref / cell.hot_ns_per_ref;
      table.AddRow({cell.policy, cdmm::StrCat(cell.result.faults),
                    cdmm::FormatFixed(cell.legacy_ns_per_ref, 2),
                    cdmm::FormatFixed(cell.hot_ns_per_ref, 2),
                    cdmm::StrCat(cdmm::FormatFixed(cell.speedup, 2), "x")});
      cells.push_back(std::move(cell));
    }
    table.Print(std::cout);
  }

  double log_sum = 0.0;
  for (const Cell& c : cells) {
    log_sum += std::log(c.speedup);
  }
  const double aggregate = std::exp(log_sum / static_cast<double>(cells.size()));
  std::cout << "\naggregate speedup (geometric mean over " << cells.size()
            << " cells): " << cdmm::FormatFixed(aggregate, 2) << "x\n"
            << "all cells verified bit-identical to the legacy simulators\n";

  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n  \"aggregate_speedup\": " << aggregate << ",\n  \"cells\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      json << (i == 0 ? "" : ",\n") << "    {\"workload\": \"" << c.workload
           << "\", \"policy\": \"" << c.policy << "\", \"references\": " << c.result.references
           << ", \"faults\": " << c.result.faults << ", \"elapsed\": " << c.result.elapsed
           << ", \"max_resident\": " << c.result.max_resident
           << ", \"legacy_ns_per_ref\": " << c.legacy_ns_per_ref
           << ", \"hot_ns_per_ref\": " << c.hot_ns_per_ref << ", \"speedup\": " << c.speedup
           << "}";
    }
    json << "\n  ]\n}\n";
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str();
  }
  return 0;
}
