// Anomaly demonstrations. The paper's §1 motivates CD with the documented
// misbehaviours of the run-time policies: FIFO's Belady anomaly, PFF's
// parameter anomalies [FrGG78], and the WS anomalies observed specifically
// on numerical programs [AbPa81], [ALMY82]. This bench scans the reproduced
// workloads for the same phenomena.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "src/cdmm/pipeline.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/pff.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace {

// FIFO: faults must *increase* somewhere as frames grow (Belady).
void FifoAnomalies() {
  std::cout << "-- FIFO (Belady) anomalies: m -> m+1 with MORE faults\n";
  cdmm::TextTable table({"Program", "m", "PF(m)", "PF(m+1)", "increase"});
  int found = 0;
  for (const cdmm::Workload& w : cdmm::AllWorkloads()) {
    auto cp = cdmm::CompiledProgram::FromSource(w.source);
    cdmm::Trace refs = cp.value().trace().ReferencesOnly();
    uint32_t v = std::min<uint32_t>(refs.virtual_pages(), 96);
    uint64_t prev = cdmm::SimulateFixed(refs, 1, cdmm::Replacement::kFifo).faults;
    uint64_t best_gain = 0;
    uint32_t best_m = 0;
    uint64_t best_prev = 0;
    uint64_t best_cur = 0;
    for (uint32_t m = 2; m <= v; ++m) {
      uint64_t cur = cdmm::SimulateFixed(refs, m, cdmm::Replacement::kFifo).faults;
      if (cur > prev && cur - prev > best_gain) {
        best_gain = cur - prev;
        best_m = m - 1;
        best_prev = prev;
        best_cur = cur;
      }
      prev = cur;
    }
    if (best_gain > 0) {
      ++found;
      table.AddRow({w.name, cdmm::StrCat(best_m), cdmm::StrCat(best_prev),
                    cdmm::StrCat(best_cur), cdmm::StrCat("+", best_gain)});
    }
  }
  if (found == 0) {
    std::cout << "   (none on these traces; the textbook witness sequence still shows it —\n"
                 "    see tests/vm_fixed_test.cc::BeladyAnomalyWitness)\n\n";
    return;
  }
  table.Print(std::cout);
  std::cout << "LRU, a stack algorithm, cannot do this (property-tested on every trace).\n\n";
}

// PFF: a larger critical interval T can produce MORE faults [FrGG78].
void PffAnomalies() {
  std::cout << "-- PFF parameter anomalies: larger T with MORE faults [FrGG78]\n";
  cdmm::TextTable table({"Program", "T", "PF(T)", "T'", "PF(T')", "increase"});
  std::vector<uint64_t> ts = {125, 250, 500, 1000, 2000, 4000, 8000, 16000};
  int found = 0;
  for (const cdmm::Workload& w : cdmm::AllWorkloads()) {
    auto cp = cdmm::CompiledProgram::FromSource(w.source);
    cdmm::Trace refs = cp.value().trace().ReferencesOnly();
    uint64_t prev = cdmm::SimulatePff(refs, ts[0]).faults;
    for (size_t i = 1; i < ts.size(); ++i) {
      uint64_t cur = cdmm::SimulatePff(refs, ts[i]).faults;
      if (cur > prev) {
        ++found;
        table.AddRow({w.name, cdmm::StrCat(ts[i - 1]), cdmm::StrCat(prev),
                      cdmm::StrCat(ts[i]), cdmm::StrCat(cur),
                      cdmm::StrCat("+", cur - prev)});
        break;  // one witness per program is enough
      }
      prev = cur;
    }
  }
  if (found == 0) {
    std::cout << "   (no witness on these traces at the scanned T grid)\n";
  } else {
    table.Print(std::cout);
  }
  std::cout << "\n";
}

// WS on numerical programs: the space-time cost is not monotone in τ and
// can have interior local minima far from either extreme [AbPa81] — tuning
// τ is genuinely hard, which is the paper's argument for compile-time
// knowledge.
void WsStructure() {
  std::cout << "-- WS space-time vs window: interior minima on numerical programs\n";
  cdmm::TextTable table({"Program", "best tau", "ST at best x1e6", "ST at tau/8 x1e6",
                         "ST at 8*tau x1e6", "interior minimum"});
  for (const cdmm::Workload& w : cdmm::AllWorkloads()) {
    auto cp = cdmm::CompiledProgram::FromSource(w.source);
    cdmm::Trace refs = cp.value().trace().ReferencesOnly();
    auto taus = cdmm::DefaultTauGrid(refs.reference_count(), 8);
    auto sweep = cdmm::WsSweep(refs, taus);
    const cdmm::SweepPoint* best = &sweep.front();
    for (const cdmm::SweepPoint& p : sweep) {
      if (p.space_time < best->space_time) {
        best = &p;
      }
    }
    uint64_t tau = static_cast<uint64_t>(best->parameter);
    auto at = [&](uint64_t target) {
      const cdmm::SweepPoint* nearest = &sweep.front();
      for (const cdmm::SweepPoint& p : sweep) {
        if (std::abs(p.parameter - static_cast<double>(target)) <
            std::abs(nearest->parameter - static_cast<double>(target))) {
          nearest = &p;
        }
      }
      return nearest->space_time;
    };
    bool interior = best != &sweep.front() && best != &sweep.back();
    table.AddRow({w.name, cdmm::StrCat(tau), cdmm::FormatMillions(best->space_time),
                  cdmm::FormatMillions(at(tau / 8 + 1)), cdmm::FormatMillions(at(tau * 8)),
                  interior ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout << "Both neighbours of the optimum cost substantially more: a mis-tuned window\n"
               "pays in memory (right) or faults (left), and the optimum moves per program\n"
               "— information the CD directives carry per loop instead.\n";
}

}  // namespace

int main() {
  std::cout << "Run-time policy anomalies on the reproduced workloads (paper §1)\n"
            << "================================================================\n\n";
  FifoAnomalies();
  PffAnomalies();
  WsStructure();
  return 0;
}
