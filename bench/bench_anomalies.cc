// Anomaly demonstrations. The paper's §1 motivates CD with the documented
// misbehaviours of the run-time policies: FIFO's Belady anomaly, PFF's
// parameter anomalies [FrGG78], and the WS anomalies observed specifically
// on numerical programs [AbPa81], [ALMY82]. This bench scans the reproduced
// workloads for the same phenomena.
//
// All nine workloads compile once, up front and in parallel; every scan then
// reads the shared immutable reference traces, fanning the per-allocation /
// per-window simulations over the --jobs pool. Witness selection stays a
// serial pass over index-ordered fault counts, so the reported anomalies are
// identical at any thread count.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/telemetry/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/pff.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace {

struct WorkloadTrace {
  std::string name;
  std::shared_ptr<const cdmm::Trace> refs;
};

std::vector<WorkloadTrace> CompileAll(const cdmm::SweepScheduler& sched) {
  const std::vector<cdmm::Workload>& all = cdmm::AllWorkloads();
  return sched.Map<WorkloadTrace>(all.size(), [&](size_t i) {
    auto cp = cdmm::CompiledProgram::FromSource(all[i].source);
    return WorkloadTrace{all[i].name, cp.value().shared_references()};
  });
}

// FIFO: faults must *increase* somewhere as frames grow (Belady).
void FifoAnomalies(const std::vector<WorkloadTrace>& workloads,
                   const cdmm::SweepScheduler& sched) {
  std::cout << "-- FIFO (Belady) anomalies: m -> m+1 with MORE faults\n";
  cdmm::TextTable table({"Program", "m", "PF(m)", "PF(m+1)", "increase"});
  struct Witness {
    uint64_t gain = 0;
    uint32_t m = 0;
    uint64_t prev = 0;
    uint64_t cur = 0;
  };
  std::vector<Witness> witnesses =
      sched.Map<Witness>(workloads.size(), [&](size_t wi) {
        const cdmm::Trace& refs = *workloads[wi].refs;
        uint32_t v = std::min<uint32_t>(refs.virtual_pages(), 96);
        std::vector<uint64_t> faults = sched.Map<uint64_t>(v, [&](size_t i) {
          return cdmm::SimulateFixed(refs, static_cast<uint32_t>(i) + 1,
                                     cdmm::Replacement::kFifo)
              .faults;
        });
        Witness best;
        for (uint32_t m = 2; m <= v; ++m) {
          uint64_t prev = faults[m - 2];
          uint64_t cur = faults[m - 1];
          if (cur > prev && cur - prev > best.gain) {
            best = Witness{cur - prev, m - 1, prev, cur};
          }
        }
        return best;
      });
  int found = 0;
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const Witness& best = witnesses[wi];
    if (best.gain > 0) {
      ++found;
      table.AddRow({workloads[wi].name, cdmm::StrCat(best.m), cdmm::StrCat(best.prev),
                    cdmm::StrCat(best.cur), cdmm::StrCat("+", best.gain)});
    }
  }
  if (found == 0) {
    std::cout << "   (none on these traces; the textbook witness sequence still shows it —\n"
                 "    see tests/vm_fixed_test.cc::BeladyAnomalyWitness)\n\n";
    return;
  }
  table.Print(std::cout);
  std::cout << "LRU, a stack algorithm, cannot do this (property-tested on every trace).\n\n";
}

// PFF: a larger critical interval T can produce MORE faults [FrGG78].
void PffAnomalies(const std::vector<WorkloadTrace>& workloads,
                  const cdmm::SweepScheduler& sched) {
  std::cout << "-- PFF parameter anomalies: larger T with MORE faults [FrGG78]\n";
  cdmm::TextTable table({"Program", "T", "PF(T)", "T'", "PF(T')", "increase"});
  const std::vector<uint64_t> ts = {125, 250, 500, 1000, 2000, 4000, 8000, 16000};
  struct Witness {
    bool found = false;
    uint64_t t_prev = 0;
    uint64_t pf_prev = 0;
    uint64_t t_cur = 0;
    uint64_t pf_cur = 0;
  };
  std::vector<Witness> witnesses =
      sched.Map<Witness>(workloads.size(), [&](size_t wi) {
        const cdmm::Trace& refs = *workloads[wi].refs;
        std::vector<uint64_t> faults = sched.Map<uint64_t>(
            ts.size(), [&](size_t i) { return cdmm::SimulatePff(refs, ts[i]).faults; });
        for (size_t i = 1; i < ts.size(); ++i) {
          if (faults[i] > faults[i - 1]) {  // one witness per program is enough
            return Witness{true, ts[i - 1], faults[i - 1], ts[i], faults[i]};
          }
        }
        return Witness{};
      });
  int found = 0;
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const Witness& w = witnesses[wi];
    if (w.found) {
      ++found;
      table.AddRow({workloads[wi].name, cdmm::StrCat(w.t_prev), cdmm::StrCat(w.pf_prev),
                    cdmm::StrCat(w.t_cur), cdmm::StrCat(w.pf_cur),
                    cdmm::StrCat("+", w.pf_cur - w.pf_prev)});
    }
  }
  if (found == 0) {
    std::cout << "   (no witness on these traces at the scanned T grid)\n";
  } else {
    table.Print(std::cout);
  }
  std::cout << "\n";
}

// WS on numerical programs: the space-time cost is not monotone in τ and
// can have interior local minima far from either extreme [AbPa81] — tuning
// τ is genuinely hard, which is the paper's argument for compile-time
// knowledge.
void WsStructure(const std::vector<WorkloadTrace>& workloads,
                 const cdmm::SweepScheduler& sched) {
  std::cout << "-- WS space-time vs window: interior minima on numerical programs\n";
  cdmm::TextTable table({"Program", "best tau", "ST at best x1e6", "ST at tau/8 x1e6",
                         "ST at 8*tau x1e6", "interior minimum"});
  std::vector<std::vector<cdmm::SweepPoint>> sweeps =
      sched.Map<std::vector<cdmm::SweepPoint>>(workloads.size(), [&](size_t wi) {
        auto taus = cdmm::DefaultTauGrid(workloads[wi].refs->reference_count(), 8);
        return sched.Ws(workloads[wi].refs, taus);
      });
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const std::vector<cdmm::SweepPoint>& sweep = sweeps[wi];
    const cdmm::SweepPoint* best = &sweep.front();
    for (const cdmm::SweepPoint& p : sweep) {
      if (p.space_time < best->space_time) {
        best = &p;
      }
    }
    uint64_t tau = static_cast<uint64_t>(best->parameter);
    auto at = [&](uint64_t target) {
      const cdmm::SweepPoint* nearest = &sweep.front();
      for (const cdmm::SweepPoint& p : sweep) {
        if (std::abs(p.parameter - static_cast<double>(target)) <
            std::abs(nearest->parameter - static_cast<double>(target))) {
          nearest = &p;
        }
      }
      return nearest->space_time;
    };
    bool interior = best != &sweep.front() && best != &sweep.back();
    table.AddRow({workloads[wi].name, cdmm::StrCat(tau),
                  cdmm::FormatMillions(best->space_time),
                  cdmm::FormatMillions(at(tau / 8 + 1)), cdmm::FormatMillions(at(tau * 8)),
                  interior ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout << "Both neighbours of the optimum cost substantially more: a mis-tuned window\n"
               "pays in memory (right) or faults (left), and the optimum moves per program\n"
               "— information the CD directives carry per loop instead.\n";
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::SweepEngine engine = cdmm::ParseSweepEngineFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_anomalies");
  cdmm::ThreadPool pool(jobs);
  cdmm::SweepScheduler sched(&pool, engine);
  std::cout << "Run-time policy anomalies on the reproduced workloads (paper §1)\n"
            << "================================================================\n\n";
  std::vector<WorkloadTrace> workloads = CompileAll(sched);
  FifoAnomalies(workloads, sched);
  PffAnomalies(workloads, sched);
  WsStructure(workloads, sched);
  return 0;
}
