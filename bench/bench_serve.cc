// Chaos-soak bench for the cdmm-serve engine (ServerCore). Drives a fixed,
// seed-derived request schedule through four phases:
//
//   warm      one request per shape: compiles the workloads, fills the cache
//   nominal   mixed traffic dominated by cache hits
//   overload  bursts whose admission cost exceeds the budget: load shedding
//   faults    fresh shapes while the deterministic injector poisons/stalls
//             attempts: retries, poisoned verdicts, circuit breakers
//   recovery  nominal traffic again; measures how many requests it takes to
//             stop shedding and how many batches until a shed-free batch
//
// Everything the phases count (statuses, retries, breaker transitions, and
// an FNV-1a fingerprint over every response envelope) is a pure function of
// (--seed, the schedule) — byte-identical at any --jobs — and prints as the
// "deterministic" JSON document. Wall-clock results (cached-path requests/s,
// p50/p99 latency) go into the "runtime" document; tools/bench_serve.py
// gates on both and writes BENCH_serve.json.
//
// Usage: bench_serve [--jobs N] [--seed N] [--deterministic-only] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/exec/flags.h"
#include "src/exec/thread_pool.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/support/str.h"
#include "src/telemetry/flags.h"

namespace {

using cdmm::ServeRequest;
using cdmm::ServeResponse;
using cdmm::ServerCore;
using cdmm::ServeStats;

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvString(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::string HexU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

ServeRequest Simulate(const std::string& workload, const std::string& policy) {
  ServeRequest r;
  r.op = cdmm::ServeOp::kSimulate;
  r.workload = workload;
  r.policy = policy;
  return r;
}

ServeRequest Ladder(const std::string& workload, const std::string& policy,
                    uint64_t penalty) {
  ServeRequest r;
  r.op = cdmm::ServeOp::kLadderCell;
  r.workload = workload;
  r.policy = policy;
  r.penalty = penalty;
  return r;
}

ServeRequest Sweep(const std::string& workload, bool ws) {
  ServeRequest r;
  r.op = ws ? cdmm::ServeOp::kSweepWs : cdmm::ServeOp::kSweepOpt;
  r.workload = workload;
  return r;
}

struct PhaseDelta {
  std::string name;
  ServeStats before;
  ServeStats after;

  uint64_t d(uint64_t ServeStats::*field) const { return after.*field - before.*field; }

  std::string Json() const {
    return cdmm::StrCat(
        "{\"phase\":\"", name, "\",\"received\":", d(&ServeStats::received),
        ",\"completed\":", d(&ServeStats::completed),
        ",\"cache_hits\":", d(&ServeStats::cache_hits),
        ",\"shed\":", d(&ServeStats::shed),
        ",\"quarantined\":", d(&ServeStats::quarantined),
        ",\"timeouts\":", d(&ServeStats::timeouts),
        ",\"poisoned\":", d(&ServeStats::poisoned),
        ",\"errors\":", d(&ServeStats::errors),
        ",\"retries\":", d(&ServeStats::retries),
        ",\"breaker_opens\":", d(&ServeStats::breaker_opens),
        ",\"breaker_closes\":", d(&ServeStats::breaker_closes), "}");
  }
};

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_serve");
  uint64_t seed = 7;
  bool deterministic_only = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--deterministic-only") {
      deterministic_only = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--jobs N] [--seed N] [--deterministic-only] "
                   "[--out FILE]\n";
      return 2;
    }
  }

  std::unique_ptr<cdmm::ThreadPool> pool;
  if (jobs > 1) {
    pool = std::make_unique<cdmm::ThreadPool>(jobs);
  }

  cdmm::ServeLimits limits;
  limits.admit_budget = 32;
  limits.breaker_threshold = 3;
  limits.breaker_cooldown = 6;
  limits.max_attempts = 3;
  limits.injection = cdmm::FaultInjectionConfig::AtIntensity(seed, 1.0);
  // The soak exercises the serve-layer fates only: request stalls, poisoned
  // attempts and the backoff schedule. The simulated machines stay nominal.
  limits.injection.stall_rate = 0.05;
  limits.injection.poison_rate = 0.30;
  ServerCore core(pool.get(), limits);

  uint64_t response_fp = kFnvOffset;
  auto run_batch = [&](const std::vector<ServeRequest>& batch) {
    for (const ServeResponse& response : core.HandleBatch(batch)) {
      response_fp = FnvString(response_fp, response.ToJson());
    }
  };

  const std::vector<std::string> workloads = {"FDJAC", "TQL", "INIT"};
  const std::vector<std::string> policies = {"lru:16", "ws:500", "fifo:24"};

  // ---- warm: one request per shape; fills the compile and result caches.
  PhaseDelta warm{"warm", core.stats(), {}};
  {
    std::vector<ServeRequest> batch;
    for (const std::string& w : workloads) {
      for (const std::string& p : policies) {
        batch.push_back(Simulate(w, p));
      }
      batch.push_back(Sweep(w, /*ws=*/true));
      batch.push_back(Sweep(w, /*ws=*/false));
      run_batch(batch);
      batch.clear();
    }
  }
  warm.after = core.stats();

  // ---- nominal: small batches, mostly repeats (cache hits).
  PhaseDelta nominal{"nominal", core.stats(), {}};
  for (int round = 0; round < 12; ++round) {
    std::vector<ServeRequest> batch;
    for (int k = 0; k < 8; ++k) {
      const std::string& w = workloads[(round + k) % workloads.size()];
      const std::string& p = policies[k % policies.size()];
      batch.push_back(Simulate(w, p));
    }
    batch.push_back(Sweep(workloads[round % workloads.size()], round % 2 == 0));
    run_batch(batch);
  }
  nominal.after = core.stats();

  // ---- overload: bursts of fresh ladder cells whose summed admission cost
  // blows through the budget; the controller must shed, not crash.
  PhaseDelta overload{"overload", core.stats(), {}};
  for (int burst = 0; burst < 2; ++burst) {
    std::vector<ServeRequest> batch;
    for (int k = 0; k < 40; ++k) {
      batch.push_back(
          Ladder("FDJAC", "lru:16", 100 + static_cast<uint64_t>(burst * 40 + k)));
    }
    run_batch(batch);
  }
  overload.after = core.stats();

  // ---- faults: fresh shapes under injected stalls/poisons — retries, the
  // poisoned verdict, breaker opens for persistently failing shapes.
  PhaseDelta faults{"faults", core.stats(), {}};
  for (int round = 0; round < 6; ++round) {
    std::vector<ServeRequest> batch;
    for (int k = 0; k < 6; ++k) {
      batch.push_back(Simulate(workloads[k % workloads.size()],
                               cdmm::StrCat("opt:", 8 + round * 6 + k)));
    }
    // A deliberately failing shape in every round feeds the breaker.
    batch.push_back(Simulate("FDJAC", "no-such-policy"));
    run_batch(batch);
  }
  faults.after = core.stats();

  // ---- recovery: nominal traffic again; count how long shedding persists.
  PhaseDelta recovery{"recovery", core.stats(), {}};
  uint64_t recovery_requests = 0;
  bool recovered = !core.shedding();
  int recovery_batches = -1;
  for (int round = 0; round < 12; ++round) {
    std::vector<ServeRequest> batch;
    for (int k = 0; k < 8; ++k) {
      batch.push_back(
          Simulate(workloads[k % workloads.size()], policies[(round + k) % policies.size()]));
    }
    ServeStats before = core.stats();
    run_batch(batch);
    if (!recovered) {
      uint64_t shed_now = core.stats().shed - before.shed;
      recovery_requests += batch.size();
      if (shed_now == 0 && !core.shedding()) {
        recovered = true;
        recovery_batches = round + 1;
      }
    }
  }
  recovery.after = core.stats();

  std::string deterministic = cdmm::StrCat(
      "{\"seed\":", seed, ",\"phases\":[", warm.Json(), ",", nominal.Json(), ",",
      overload.Json(), ",", faults.Json(), ",", recovery.Json(),
      "],\"recovery_requests\":", recovery_requests,
      ",\"recovery_batches\":", recovery_batches,
      ",\"response_fingerprint\":\"0x", HexU64(response_fp), "\"}");

  if (deterministic_only) {
    std::cout << deterministic << "\n";
    return 0;
  }

  // ---- runtime: cached-path throughput and per-request latency. All
  // requests below are cache hits; the >=10k req/s gate lives here.
  const int kCachedRequests = 20000;
  std::vector<double> latencies_us;
  latencies_us.reserve(kCachedRequests);
  ServeRequest hot = Simulate("FDJAC", "lru:16");
  auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kCachedRequests; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    ServeResponse r = core.Handle(hot);
    auto t1 = std::chrono::steady_clock::now();
    if (!r.cached) {
      std::cerr << "cached-path request was not served from cache\n";
      return 1;
    }
    latencies_us.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() / 1000.0);
  }
  double wall_s = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count() /
                  1e9;
  std::sort(latencies_us.begin(), latencies_us.end());
  double rps = wall_s > 0 ? kCachedRequests / wall_s : 0;
  double p50 = latencies_us[latencies_us.size() / 2];
  double p99 = latencies_us[latencies_us.size() * 99 / 100];
  double p999 = latencies_us[std::min(latencies_us.size() - 1, latencies_us.size() * 999 / 1000)];

  // Power-of-two microsecond buckets [1,2), [2,4), ...; the last bucket
  // absorbs the tail. Together with p99/p999 this makes tail-latency
  // regressions visible in the committed BENCH document, not just the mean.
  constexpr int kLatencyBuckets = 12;
  uint64_t histogram[kLatencyBuckets] = {};
  for (double us : latencies_us) {
    int b = 0;
    while (b < kLatencyBuckets - 1 && us >= static_cast<double>(2ull << b)) {
      ++b;
    }
    ++histogram[b];
  }
  std::string histogram_json = "[";
  for (int b = 0; b < kLatencyBuckets; ++b) {
    histogram_json += cdmm::StrCat(b == 0 ? "" : ",", histogram[b]);
  }
  histogram_json += "]";

  std::string runtime = cdmm::StrCat(
      "{\"jobs\":", jobs == 0 ? cdmm::ThreadPool::DefaultConcurrency() : jobs,
      ",\"cached_requests\":", kCachedRequests,
      ",\"cached_rps\":", cdmm::FormatFixed(rps, 0),
      ",\"p50_us\":", cdmm::FormatFixed(p50, 2),
      ",\"p99_us\":", cdmm::FormatFixed(p99, 2),
      ",\"p999_us\":", cdmm::FormatFixed(p999, 2),
      ",\"latency_histogram_us\":", histogram_json,
      ",\"wall_ms\":", cdmm::FormatFixed(wall_s * 1000.0, 1), "}");

  std::string doc = cdmm::StrCat("{\"bench\":\"serve\",\"deterministic\":", deterministic,
                                 ",\"runtime\":", runtime, "}");
  std::cout << doc << "\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc << "\n";
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 1;
    }
  }
  return 0;
}
