// Reproduces Table 3: "Comparing LRU and WS versus CD When Similar Average
// Memory is Allocated to All Policies". The LRU partition is CD's rounded
// mean memory; the WS window is the sweep point whose mean working-set size
// is closest to CD's. ΔPF and %ST report the excess faults / space-time.
#include <cstdio>
#include <iostream>
#include <map>

#include "src/cdmm/experiments.h"
#include "src/exec/flags.h"
#include "src/telemetry/flags.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

namespace {

struct PaperRow {
  long dpf_lru;
  double pct_st_lru;
  long dpf_ws;
  double pct_st_ws;
};

// Table 3 of the paper.
const std::map<std::string, PaperRow> kPaper = {
    {"MAIN", {1530, 146.3, 0, -4.7}},       {"MAIN1", {236, 338.87, 207, 316.45}},
    {"MAIN2", {207, 35.5, 207, 19.8}},      {"MAIN3", {22665, 1585.9, 22665, 1585.9}},
    {"FDJAC", {337, 115.75, 293, 91.1}},    {"FDJAC1", {53, -6.8, 296, 60.78}},
    {"FIELD", {2643, 1538.9, 2, 18.0}},     {"INIT", {2287, 979.5, 775, 630.0}},
    {"APPROX", {365, 54.3, 203, 83.5}},     {"HYBRJ", {317, 159.1, 283, 139.1}},
    {"CONDUCT", {3477, 988.3, 1944, 1840.5}}, {"TQL1", {1017, 191.55, 958, 223.9}},
    {"TQL2", {918, 170.6, 969, 214.4}},     {"HWSCRT", {4028, 1047.9, 4033, 2265.2}},
};

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::SweepEngine engine = cdmm::ParseSweepEngineFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_table3");
  cdmm::ThreadPool pool(jobs);
  std::cout
      << "Table 3: Comparing LRU and WS versus CD When Similar Average Memory is Allocated\n"
      << "ΔPF = PF(other) - PF(CD); %ST = (ST(other) - ST(CD)) / ST(CD) * 100\n"
      << "(paper values in parentheses)\n\n";

  cdmm::ExperimentRunner runner({}, {}, &pool, engine);
  runner.Prefetch(cdmm::Table3Variants());
  cdmm::TextTable table({"Program", "MEM CD", "PF CD", "LRU m", "dPF LRU (paper)",
                         "%ST LRU (paper)", "WS tau", "dPF WS (paper)", "%ST WS (paper)"});
  double mean_dpf_lru = 0.0;
  double mean_dpf_ws = 0.0;
  size_t n = cdmm::Table3Variants().size();
  for (const cdmm::WorkloadVariant& variant : cdmm::Table3Variants()) {
    auto row = runner.EqualMemoryComparison(variant);
    const PaperRow& p = kPaper.at(variant.variant_name);
    table.AddRow({row.variant, cdmm::FormatFixed(row.mem_cd, 2), cdmm::StrCat(row.pf_cd),
                  cdmm::StrCat(row.lru_frames),
                  cdmm::StrCat(row.dpf_lru, " (", p.dpf_lru, ")"),
                  cdmm::StrCat(cdmm::FormatFixed(row.pct_st_lru, 1), " (", p.pct_st_lru, ")"),
                  cdmm::StrCat(row.ws_tau),
                  cdmm::StrCat(row.dpf_ws, " (", p.dpf_ws, ")"),
                  cdmm::StrCat(cdmm::FormatFixed(row.pct_st_ws, 1), " (", p.pct_st_ws, ")")});
    mean_dpf_lru += static_cast<double>(row.dpf_lru);
    mean_dpf_ws += static_cast<double>(row.dpf_ws);
  }
  table.Print(std::cout);
  std::printf("\nAt CD's memory, LRU generates %.0f and WS %.0f more faults on average\n"
              "(paper: 2863 and 2340). The drastic rows (APPROX, CONDUCT, HWSCRT, HYBRJ)\n"
              "are the phase-alternating programs where a fixed partition must thrash.\n",
              mean_dpf_lru / static_cast<double>(n), mean_dpf_ws / static_cast<double>(n));
  return 0;
}
