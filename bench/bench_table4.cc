// Reproduces Table 4: "The Cost of Generating The Same Number of Page Faults
// as CD by LRU and WS". LRU picks the smallest partition whose fault count
// does not exceed CD's; WS picks the smallest-memory window meeting the same
// target. %MEM and %ST report the excess memory / space-time they need.
#include <cstdio>
#include <iostream>
#include <map>

#include "src/cdmm/experiments.h"
#include "src/exec/flags.h"
#include "src/telemetry/flags.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

namespace {

struct PaperRow {
  double pct_mem_lru;
  double pct_st_lru;
  double pct_mem_ws;
  double pct_st_ws;
};

// Table 4 of the paper.
const std::map<std::string, PaperRow> kPaper = {
    {"MAIN", {150, 32, 14, -4.7}},          {"MAIN1", {170, 415.68, 72.5, 216.45}},
    {"MAIN2", {88, 58, 80.5, 49.5}},        {"MAIN3", {170.3, 46.6, 64, 16.6}},
    {"FDJAC", {102, 26.7, 123, 39}},        {"FDJAC1", {60.7, -9.3, 77, -0.3}},
    {"FIELD", {106.8, 29.5, 53.4, 28}},     {"INIT", {171.2, 132.5, 151.8, 108.2}},
    {"APPROX", {105.8, 36.2, 34.4, 77.9}},  {"HYBRJ", {41.5, 29.5, 82.3, 140}},
    {"CONDUCT", {283.7, 324.6, 11.6, 36.1}}, {"TQL1", {61.3, 34.8, 86.4, 4.2}},
    {"TQL2", {98, 25.2, 128.8, -3.3}},      {"HWSCRT", {442, 433.5, 124.6, 234.3}},
};

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::SweepEngine engine = cdmm::ParseSweepEngineFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_table4");
  cdmm::ThreadPool pool(jobs);
  std::cout << "Table 4: The Cost of Generating The Same Number of Page Faults as CD\n"
            << "%MEM = (MEM(other) - MEM(CD)) / MEM(CD) * 100  (paper values in parentheses)\n\n";

  cdmm::ExperimentRunner runner({}, {}, &pool, engine);
  runner.Prefetch(cdmm::Table3Variants());
  cdmm::TextTable table({"Program", "PF CD", "MEM CD", "LRU m", "%MEM LRU (paper)",
                         "%ST LRU (paper)", "WS tau", "%MEM WS (paper)", "%ST WS (paper)"});
  double mean_mem_lru = 0.0;
  double mean_mem_ws = 0.0;
  size_t n = cdmm::Table3Variants().size();
  for (const cdmm::WorkloadVariant& variant : cdmm::Table3Variants()) {
    auto row = runner.EqualFaultComparison(variant);
    const PaperRow& p = kPaper.at(variant.variant_name);
    table.AddRow({row.variant, cdmm::StrCat(row.pf_cd), cdmm::FormatFixed(row.mem_cd, 2),
                  cdmm::StrCat(row.lru_frames),
                  cdmm::StrCat(cdmm::FormatFixed(row.pct_mem_lru, 1), " (", p.pct_mem_lru, ")"),
                  cdmm::StrCat(cdmm::FormatFixed(row.pct_st_lru, 1), " (", p.pct_st_lru, ")"),
                  cdmm::StrCat(row.ws_tau),
                  cdmm::StrCat(cdmm::FormatFixed(row.pct_mem_ws, 1), " (", p.pct_mem_ws, ")"),
                  cdmm::StrCat(cdmm::FormatFixed(row.pct_st_ws, 1), " (", p.pct_st_ws, ")")});
    mean_mem_lru += row.pct_mem_lru;
    mean_mem_ws += row.pct_mem_ws;
  }
  table.Print(std::cout);
  std::printf("\nTo match CD's fault count, LRU needs %.0f%% and WS %.0f%% more memory on\n"
              "average (paper: 247%% and 175%%). Negative rows mark programs whose phases\n"
              "the swept policy serves as well as the directives do (the paper has such\n"
              "rows too, e.g. FDJAC1 LRU -9.3, TQL2 WS -3.3).\n",
              mean_mem_lru / static_cast<double>(n), mean_mem_ws / static_cast<double>(n));
  return 0;
}
