// Multiprogramming bench (§4 of the paper): several numerical programs share
// one frame pool under the CD memory manager — ALLOCATE processed against
// live availability (Figure 6), swapping on ungrantable PI=1 requests — and
// under a static equal-partition LRU baseline. The paper defers this
// evaluation ("the performance of CD in a multiprogramming environment is
// still to be evaluated"); this bench carries it out on the reproduced
// workloads.
//
// The three mixes render concurrently over the --jobs pool, and within each
// mix the CD / eq-LRU / WS managers simulate in parallel against the same
// immutable traces; sections buffer and print in mix order.
#include <iostream>
#include <sstream>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/telemetry/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/os/multiprog.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

namespace {

std::string RunMix(const std::vector<std::string>& names, uint32_t frames,
                   const cdmm::SweepScheduler& sched) {
  std::vector<std::unique_ptr<cdmm::CompiledProgram>> programs;
  std::vector<cdmm::OsProcessSpec> specs;
  int priority = 0;
  for (const std::string& name : names) {
    auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(name).source);
    programs.push_back(std::make_unique<cdmm::CompiledProgram>(std::move(cp).value()));
    specs.push_back(cdmm::OsProcessSpec{name, &programs.back()->trace(), priority++});
  }

  cdmm::OsOptions options;
  options.total_frames = frames;

  // The three managers only read the traces; run them as one task apiece.
  std::vector<cdmm::OsRunResult> runs =
      sched.Map<cdmm::OsRunResult>(3, [&](size_t i) {
        // The built-in mixes always fit the pool, so the Result is ok.
        switch (i) {
          case 0:
            return cdmm::RunMultiprogrammedCd(specs, options).value();
          case 1:
            return cdmm::RunEqualPartitionLru(specs, options).value();
          default:
            return cdmm::RunMultiprogrammedWs(specs, options, /*tau=*/2000).value();
        }
      });
  const cdmm::OsRunResult& cd = runs[0];
  const cdmm::OsRunResult& lru = runs[1];
  const cdmm::OsRunResult& ws = runs[2];

  std::ostringstream out;
  out << "-- Mix {" << cdmm::Join(names, ", ") << "} on " << frames << " frames\n";
  cdmm::TextTable table({"Process", "PF (CD)", "PF (eq-LRU)", "PF (WS)", "frames (CD)",
                         "frames (eq-LRU)", "frames (WS)", "finish (CD)", "finish (eq-LRU)",
                         "finish (WS)"});
  for (size_t i = 0; i < cd.processes.size(); ++i) {
    const cdmm::OsProcessStats& a = cd.processes[i];
    const cdmm::OsProcessStats& b = lru.processes[i];
    const cdmm::OsProcessStats& c = ws.processes[i];
    table.AddRow({a.name, cdmm::StrCat(a.faults), cdmm::StrCat(b.faults),
                  cdmm::StrCat(c.faults), cdmm::FormatFixed(a.mean_held, 1),
                  cdmm::FormatFixed(b.mean_held, 1), cdmm::FormatFixed(c.mean_held, 1),
                  cdmm::StrCat(a.finished_at), cdmm::StrCat(b.finished_at),
                  cdmm::StrCat(c.finished_at)});
  }
  table.Print(out);
  out << "totals: faults CD " << cd.total_faults << " / eq-LRU " << lru.total_faults
      << " / WS " << ws.total_faults << "; makespan CD " << cd.total_time << " / eq-LRU "
      << lru.total_time << " / WS " << ws.total_time << "; swaps CD " << cd.swaps
      << " / WS " << ws.swaps << "; CPU util CD "
      << cdmm::FormatFixed(cd.cpu_utilisation * 100, 1) << "% / eq-LRU "
      << cdmm::FormatFixed(lru.cpu_utilisation * 100, 1) << "% / WS "
      << cdmm::FormatFixed(ws.cpu_utilisation * 100, 1) << "%\n\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::SweepEngine engine = cdmm::ParseSweepEngineFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_multiprog");
  cdmm::ThreadPool pool(jobs);
  cdmm::SweepScheduler sched(&pool, engine);
  std::cout << "Multiprogrammed CD vs static equal-partition LRU vs WS load control\n"
            << "===================================================================\n\n";
  struct Mix {
    std::vector<std::string> names;
    uint32_t frames;
  };
  const std::vector<Mix> mixes = {
      {{"INIT", "APPROX", "HYBRJ"}, 96},
      {{"HWSCRT", "TQL", "FDJAC"}, 128},
      {{"MAIN", "FIELD", "INIT", "APPROX"}, 160},
  };
  std::vector<std::string> sections = sched.Map<std::string>(
      mixes.size(), [&](size_t i) { return RunMix(mixes[i].names, mixes[i].frames, sched); });
  for (const std::string& s : sections) {
    std::cout << s;
  }
  return 0;
}
