// Ablation benches for the CD design choices DESIGN.md calls out:
//   1. directive selection level (which (PI,X) alternative is honoured);
//   2. LOCK/UNLOCK on vs off;
//   3. the system-default minimum allocation;
//   4. page size (the one system-dependent locality parameter P);
//   5. fault service time (the paper's 2000-reference assumption).
//
// Each ablation fans its configurations out over the --jobs pool; rows are
// collected by configuration index, so the tables read the same at any
// thread count.
#include <iostream>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/telemetry/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/vm/cd_policy.h"
#include "src/workloads/workloads.h"

namespace {

cdmm::SimResult RunCd(const cdmm::CompiledProgram& cp, cdmm::DirectiveSelection sel, int cap,
                      bool locks, uint64_t fault_service = 2000) {
  cdmm::CdOptions options;
  options.selection = sel;
  options.level_cap = cap;
  options.honor_locks = locks;
  options.sim.fault_service_time = fault_service;
  return cdmm::SimulateCd(cp.trace(), options);
}

void AddRow(cdmm::TextTable& table, const std::string& label, const cdmm::SimResult& r) {
  table.AddRow({label, cdmm::StrCat(r.faults), cdmm::FormatFixed(r.mean_memory, 2),
                cdmm::FormatMillions(r.space_time), cdmm::StrCat(r.directives_processed),
                cdmm::StrCat(r.allocation_shrinks)});
}

void SelectionAblation(const char* workload, const cdmm::SweepScheduler& sched) {
  auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(workload).source);
  const cdmm::CompiledProgram& c = cp.value();
  std::cout << "-- Directive-selection ablation on " << workload << " (V="
            << c.virtual_pages() << " pages)\n";
  struct Cfg {
    const char* label;
    cdmm::DirectiveSelection sel;
    int cap;
  };
  const std::vector<Cfg> cfgs = {
      {"outermost", cdmm::DirectiveSelection::kOutermost, 0},
      {"level-cap 3", cdmm::DirectiveSelection::kLevelCap, 3},
      {"level-cap 2", cdmm::DirectiveSelection::kLevelCap, 2},
      {"innermost", cdmm::DirectiveSelection::kInnermost, 0},
  };
  std::vector<cdmm::SimResult> results = sched.Map<cdmm::SimResult>(
      cfgs.size(), [&](size_t i) { return RunCd(c, cfgs[i].sel, cfgs[i].cap, true); });
  cdmm::TextTable table({"Selection", "PF", "MEM", "ST x1e6", "directives", "shrinks"});
  for (size_t i = 0; i < cfgs.size(); ++i) {
    AddRow(table, cfgs[i].label, results[i]);
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void LockAblation(const cdmm::SweepScheduler& sched) {
  std::cout << "-- LOCK/UNLOCK ablation (innermost selection, where pinning matters most)\n";
  cdmm::TextTable table({"Program", "PF locks on", "PF locks off", "MEM on", "MEM off"});
  const std::vector<const char*> names = {"MAIN", "TQL", "FIELD", "CONDUCT"};
  struct Row {
    cdmm::SimResult on;
    cdmm::SimResult off;
  };
  std::vector<Row> rows = sched.Map<Row>(names.size(), [&](size_t i) {
    auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(names[i]).source);
    const cdmm::CompiledProgram& c = cp.value();
    return Row{RunCd(c, cdmm::DirectiveSelection::kInnermost, 0, true),
               RunCd(c, cdmm::DirectiveSelection::kInnermost, 0, false)};
  });
  for (size_t i = 0; i < names.size(); ++i) {
    table.AddRow({names[i], cdmm::StrCat(rows[i].on.faults), cdmm::StrCat(rows[i].off.faults),
                  cdmm::FormatFixed(rows[i].on.mean_memory, 2),
                  cdmm::FormatFixed(rows[i].off.mean_memory, 2)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void PageSizeAblation(const cdmm::SweepScheduler& sched) {
  std::cout << "-- Page-size ablation on CONDUCT (the system parameter P of §2)\n";
  cdmm::TextTable table({"Page size", "V pages", "PF", "MEM", "ST x1e6"});
  const std::vector<uint32_t> pages = {128, 256, 512, 1024};
  struct Row {
    uint32_t v;
    cdmm::SimResult r;
  };
  std::vector<Row> rows = sched.Map<Row>(pages.size(), [&](size_t i) {
    cdmm::PipelineOptions popt;
    popt.locality.geometry.page_size_bytes = pages[i];
    auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload("CONDUCT").source, popt);
    const cdmm::CompiledProgram& c = cp.value();
    return Row{c.virtual_pages(), RunCd(c, cdmm::DirectiveSelection::kLevelCap, 2, true)};
  });
  for (size_t i = 0; i < pages.size(); ++i) {
    table.AddRow({cdmm::StrCat(pages[i], "B"), cdmm::StrCat(rows[i].v),
                  cdmm::StrCat(rows[i].r.faults), cdmm::FormatFixed(rows[i].r.mean_memory, 2),
                  cdmm::FormatMillions(rows[i].r.space_time)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void FaultServiceAblation(const cdmm::SweepScheduler& sched) {
  std::cout << "-- Fault-service-time ablation on HWSCRT (paper assumes 2000 references)\n";
  auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload("HWSCRT").source);
  const cdmm::CompiledProgram& c = cp.value();
  cdmm::TextTable table({"Service time", "ST inner x1e6", "ST level-cap-2 x1e6",
                         "ST outer x1e6", "best"});
  const std::vector<uint64_t> ds = {200, 2000, 20000};
  struct Row {
    cdmm::SimResult inner;
    cdmm::SimResult mid;
    cdmm::SimResult outer;
  };
  std::vector<Row> rows = sched.Map<Row>(ds.size(), [&](size_t i) {
    return Row{RunCd(c, cdmm::DirectiveSelection::kInnermost, 0, true, ds[i]),
               RunCd(c, cdmm::DirectiveSelection::kLevelCap, 2, true, ds[i]),
               RunCd(c, cdmm::DirectiveSelection::kOutermost, 0, true, ds[i])};
  });
  for (size_t i = 0; i < ds.size(); ++i) {
    const Row& row = rows[i];
    const char* best = "inner";
    double best_st = row.inner.space_time;
    if (row.mid.space_time < best_st) {
      best = "level-cap 2";
      best_st = row.mid.space_time;
    }
    if (row.outer.space_time < best_st) {
      best = "outer";
    }
    table.AddRow({cdmm::StrCat(ds[i]), cdmm::FormatMillions(row.inner.space_time),
                  cdmm::FormatMillions(row.mid.space_time),
                  cdmm::FormatMillions(row.outer.space_time), best});
  }
  table.Print(std::cout);
  std::cout << "\nSlower fault service shifts the optimal directive level outward: refetching\n"
               "a dropped locality costs PF*D, holding it costs pages*time — exactly the\n"
               "trade the priority-index chain lets the OS make at run time.\n";
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::SweepEngine engine = cdmm::ParseSweepEngineFlag(&argc, argv);
  cdmm::telem::ScopedTelemetry telemetry(&argc, argv, "bench_ablation");
  cdmm::ThreadPool pool(jobs);
  cdmm::SweepScheduler sched(&pool, engine);
  std::cout << "CD design-choice ablations\n==========================\n\n";
  SelectionAblation("MAIN", sched);
  SelectionAblation("CONDUCT", sched);
  LockAblation(sched);
  PageSizeAblation(sched);
  FaultServiceAblation(sched);
  return 0;
}
