// Ablation benches for the CD design choices DESIGN.md calls out:
//   1. directive selection level (which (PI,X) alternative is honoured);
//   2. LOCK/UNLOCK on vs off;
//   3. the system-default minimum allocation;
//   4. page size (the one system-dependent locality parameter P);
//   5. fault service time (the paper's 2000-reference assumption).
#include <iostream>

#include "src/cdmm/pipeline.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/vm/cd_policy.h"
#include "src/workloads/workloads.h"

namespace {

cdmm::SimResult RunCd(const cdmm::CompiledProgram& cp, cdmm::DirectiveSelection sel, int cap,
                      bool locks, uint64_t fault_service = 2000) {
  cdmm::CdOptions options;
  options.selection = sel;
  options.level_cap = cap;
  options.honor_locks = locks;
  options.sim.fault_service_time = fault_service;
  return cdmm::SimulateCd(cp.trace(), options);
}

void AddRow(cdmm::TextTable& table, const std::string& label, const cdmm::SimResult& r) {
  table.AddRow({label, cdmm::StrCat(r.faults), cdmm::FormatFixed(r.mean_memory, 2),
                cdmm::FormatMillions(r.space_time), cdmm::StrCat(r.directives_processed),
                cdmm::StrCat(r.allocation_shrinks)});
}

void SelectionAblation(const char* workload) {
  auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(workload).source);
  const cdmm::CompiledProgram& c = cp.value();
  std::cout << "-- Directive-selection ablation on " << workload << " (V="
            << c.virtual_pages() << " pages)\n";
  cdmm::TextTable table({"Selection", "PF", "MEM", "ST x1e6", "directives", "shrinks"});
  AddRow(table, "outermost", RunCd(c, cdmm::DirectiveSelection::kOutermost, 0, true));
  AddRow(table, "level-cap 3", RunCd(c, cdmm::DirectiveSelection::kLevelCap, 3, true));
  AddRow(table, "level-cap 2", RunCd(c, cdmm::DirectiveSelection::kLevelCap, 2, true));
  AddRow(table, "innermost", RunCd(c, cdmm::DirectiveSelection::kInnermost, 0, true));
  table.Print(std::cout);
  std::cout << "\n";
}

void LockAblation() {
  std::cout << "-- LOCK/UNLOCK ablation (innermost selection, where pinning matters most)\n";
  cdmm::TextTable table({"Program", "PF locks on", "PF locks off", "MEM on", "MEM off"});
  for (const char* name : {"MAIN", "TQL", "FIELD", "CONDUCT"}) {
    auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(name).source);
    const cdmm::CompiledProgram& c = cp.value();
    cdmm::SimResult on = RunCd(c, cdmm::DirectiveSelection::kInnermost, 0, true);
    cdmm::SimResult off = RunCd(c, cdmm::DirectiveSelection::kInnermost, 0, false);
    table.AddRow({name, cdmm::StrCat(on.faults), cdmm::StrCat(off.faults),
                  cdmm::FormatFixed(on.mean_memory, 2), cdmm::FormatFixed(off.mean_memory, 2)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void PageSizeAblation() {
  std::cout << "-- Page-size ablation on CONDUCT (the system parameter P of §2)\n";
  cdmm::TextTable table({"Page size", "V pages", "PF", "MEM", "ST x1e6"});
  for (uint32_t page : {128u, 256u, 512u, 1024u}) {
    cdmm::PipelineOptions popt;
    popt.locality.geometry.page_size_bytes = page;
    auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload("CONDUCT").source, popt);
    const cdmm::CompiledProgram& c = cp.value();
    cdmm::SimResult r = RunCd(c, cdmm::DirectiveSelection::kLevelCap, 2, true);
    table.AddRow({cdmm::StrCat(page, "B"), cdmm::StrCat(c.virtual_pages()),
                  cdmm::StrCat(r.faults), cdmm::FormatFixed(r.mean_memory, 2),
                  cdmm::FormatMillions(r.space_time)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void FaultServiceAblation() {
  std::cout << "-- Fault-service-time ablation on HWSCRT (paper assumes 2000 references)\n";
  auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload("HWSCRT").source);
  const cdmm::CompiledProgram& c = cp.value();
  cdmm::TextTable table({"Service time", "ST inner x1e6", "ST level-cap-2 x1e6",
                         "ST outer x1e6", "best"});
  for (uint64_t d : {200u, 2000u, 20000u}) {
    cdmm::SimResult inner = RunCd(c, cdmm::DirectiveSelection::kInnermost, 0, true, d);
    cdmm::SimResult mid = RunCd(c, cdmm::DirectiveSelection::kLevelCap, 2, true, d);
    cdmm::SimResult outer = RunCd(c, cdmm::DirectiveSelection::kOutermost, 0, true, d);
    const char* best = "inner";
    double best_st = inner.space_time;
    if (mid.space_time < best_st) {
      best = "level-cap 2";
      best_st = mid.space_time;
    }
    if (outer.space_time < best_st) {
      best = "outer";
    }
    table.AddRow({cdmm::StrCat(d), cdmm::FormatMillions(inner.space_time),
                  cdmm::FormatMillions(mid.space_time), cdmm::FormatMillions(outer.space_time),
                  best});
  }
  table.Print(std::cout);
  std::cout << "\nSlower fault service shifts the optimal directive level outward: refetching\n"
               "a dropped locality costs PF*D, holding it costs pages*time — exactly the\n"
               "trade the priority-index chain lets the OS make at run time.\n";
}

}  // namespace

int main() {
  std::cout << "CD design-choice ablations\n==========================\n\n";
  SelectionAblation("MAIN");
  SelectionAblation("CONDUCT");
  LockAblation();
  PageSizeAblation();
  FaultServiceAblation();
  return 0;
}
