
      PROGRAM TRED
      PARAMETER (N = 64)
      DIMENSION A(N,N), D(N), E(N)
      DO 60 K = 1, 63
        DO 10 I = K, N
          D(I) = A(I,K) * A(I,K) + D(I)
   10   CONTINUE
        E(K) = D(K) * 0.5
        DO 40 J = K, N
          DO 30 I = K, N
            A(I,J) = A(I,J) - A(I,K) * E(K) * A(J,K)
   30     CONTINUE
   40   CONTINUE
   60 CONTINUE
      END
