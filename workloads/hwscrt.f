
      PROGRAM HWSCRT
      PARAMETER (M = 64, NSTEP = 6)
      DIMENSION F(M,M), BDA(M), BDB(M), W(192)
      DO 70 STEP = 1, NSTEP
        DO 20 J = 1, M
          DO 10 I = 1, M
            F(I,J) = F(I,J) * W(I)
   10     CONTINUE
   20   CONTINUE
        DO 40 I = 1, M
          DO 30 J = 2, 63
            F(I,J) = F(I,J) + BDA(I) * (F(I,J+1) - F(I,J-1))
   30     CONTINUE
   40   CONTINUE
        DO 60 J = 2, 63
          DO 50 I = 1, M
            F(I,J) = F(I,J) - BDB(I) * W(I+64)
   50     CONTINUE
   60   CONTINUE
   70 CONTINUE
      END
