
      PROGRAM FDJAC
      PARAMETER (MR = 384, N = 96, NITER = 2)
      DIMENSION FJAC(MR,N), X(N), FVEC(MR), WA(MR), DAT(MR), SIG(MR), QTF(N)
      DO 60 ITER = 1, NITER
        DO 30 J = 1, N
          X(J) = X(J) + 0.001
          DO 10 I = 1, MR
            WA(I) = X(J) * DAT(I) + FVEC(I) * SIG(I)
   10     CONTINUE
          DO 20 I = 1, MR
            FJAC(I,J) = WA(I) - FVEC(I)
   20     CONTINUE
          X(J) = X(J) - 0.001
   30   CONTINUE
        DO 50 J = 1, N
          DO 40 I = 1, MR
            QTF(J) = QTF(J) + FJAC(I,J) * FVEC(I)
   40     CONTINUE
   50   CONTINUE
   60 CONTINUE
      END
