
      PROGRAM HYBRJ
      PARAMETER (N = 64)
      DIMENSION R(N,N), QTF(N), DIAG(N), WA(N)
      DO 60 J = 1, N
        DO 10 I = J, N
          R(I,J) = R(I,J) + DIAG(I) * DIAG(J)
          WA(I) = R(I,J) * QTF(I)
   10   CONTINUE
        DO 30 K = J, N
          DO 20 I = 1, J
            R(I,K) = R(I,K) - WA(I) * R(I,J)
   20     CONTINUE
   30   CONTINUE
        DO 50 K = 1, N
          DO 40 I = 1, N
            R(I,K) = R(I,K) * 0.999
   40     CONTINUE
   50   CONTINUE
   60 CONTINUE
      END
