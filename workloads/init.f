
      PROGRAM INIT
      PARAMETER (M = 128, N = 64, LS = 16384, NP = 10)
      DIMENSION U(M,N), V(M,N), S(LS), TBL(2048)
      DO 20 J = 1, N
        DO 10 I = 1, M
          U(I,J) = 1.0
   10   CONTINUE
   20 CONTINUE
      DO 40 J = 1, N
        DO 30 I = 1, M
          V(I,J) = U(I,J) * 2.0
   30   CONTINUE
   40 CONTINUE
      DO 45 I = 1, LS
        S(I) = 0.5
   45 CONTINUE
      DO 70 K = 1, NP
        DO 55 R = 1, 3
          DO 50 I = 1, 2048
            TBL(I) = TBL(I) + 1.0
   50     CONTINUE
   55   CONTINUE
   70 CONTINUE
      END
