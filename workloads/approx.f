
      PROGRAM APPROX
      PARAMETER (NS = 2048, NW = 8192, NC = 24)
      DIMENSION X(NS), Y(NS), C(NC), WK(NW)
      DO 40 K = 1, NC
        DO 10 I = 1, NS
          Y(I) = Y(I) + C(K) * X(I)
   10   CONTINUE
        DO 20 I = 1, NS
          C(K) = C(K) + X(I) * Y(I)
   20   CONTINUE
        DO 30 I = 2, NW
          WK(I) = WK(I) + WK(I-1) * 0.5
   30   CONTINUE
   40 CONTINUE
      END
