
      PROGRAM FIELD
      PARAMETER (M = 128, N = 48, NT = 8)
      DIMENSION A(M,N), B(M,N), CX(M), CY(M)
      DO 50 T = 1, NT
        DO 20 J = 3, 46
          DO 10 I = 2, 127
            B(I,J) = A(I,J) + A(I,J-2) + A(I,J+2) + CX(I) * A(I+1,J) + CY(I) * A(I-1,J)
   10     CONTINUE
   20   CONTINUE
        DO 40 J = 1, N
          DO 30 I = 1, M
            A(I,J) = B(I,J) * 0.2
   30     CONTINUE
   40   CONTINUE
        DO 65 S = 1, 2
          DO 60 J = 1, 16
            DO 55 I = 1, M
              CX(I) = CX(I) + A(I,J) * 0.001
   55       CONTINUE
   60     CONTINUE
   65   CONTINUE
   50 CONTINUE
      END
