
      PROGRAM GAUSSJ
      PARAMETER (N = 80)
      REAL A(N,N), B(N), PIV(N)
      DO 50 K = 1, N
        DO 10 I = 1, N
          PIV(I) = A(I,K)
   10   CONTINUE
        DO 40 J = K, N
          DO 30 I = 1, N
            A(I,J) = A(I,J) - PIV(I) * A(K,J)
   30     CONTINUE
   40   CONTINUE
        B(K) = B(K) / (PIV(K) + 1.0)
   50 CONTINUE
      END
