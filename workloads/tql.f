
      PROGRAM TQL
      PARAMETER (N = 64, NQL = 2)
      DIMENSION Z(N,N), D(N), E(N)
      DO 100 L = 1, N
        DO 90 ITER = 1, NQL
          E(L) = E(L) * 0.99
          D(L) = D(L) + E(L)
          DO 20 I = L, N
            D(I) = D(I) - E(I) * E(I) / (D(I) + 2.0)
            E(I) = E(I) * 0.5
   20     CONTINUE
          DO 40 K = L, N
            DO 30 I = 1, N
              Z(I,K) = Z(I,K) * E(K) + Z(I,L) * D(K)
   30       CONTINUE
   40     CONTINUE
   90   CONTINUE
  100 CONTINUE
      END
