
      PROGRAM POISSN
      PARAMETER (M = 96, N = 48, NIT = 10)
      REAL U(M,N), RHS(M,N)
      DO 30 IT = 1, NIT
        DO 20 J = 2, 47
          DO 10 I = 2, 95
            U(I,J) = (U(I+1,J) + U(I-1,J) + U(I,J+1) + U(I,J-1) - RHS(I,J)) * 0.25
   10     CONTINUE
   20   CONTINUE
   30 CONTINUE
      END
