
      PROGRAM MAIN
      PARAMETER (M = 128, N = 20, NT = 10, L = 640)
      DIMENSION P(M,N), Q(M,N), W(M), Z(L), R(L)
      DO 20 J = 1, N
        DO 10 I = 1, M
          P(I,J) = 0.0
          Q(I,J) = 1.0
   10   CONTINUE
   20 CONTINUE
      DO 60 T = 1, NT
        DO 50 J = 2, 19
          P(1,J) = W(1) * 2.0
          Q(1,J) = W(2) * 0.5
          DO 30 I = 2, 127
            Q(I,J) = P(I,J) + P(I,J-1) + P(I,J+1) + W(I)
            P(I,J) = Q(I,J) + Q(I-1,J)
   30     CONTINUE
   50   CONTINUE
        DO 57 S = 1, 2
          DO 55 J = 1, N
            DO 53 I = 1, M
              W(I) = W(I) + P(I,J) * Q(I,J)
   53       CONTINUE
   55     CONTINUE
   57   CONTINUE
   60 CONTINUE
      DO 90 K = 1, 30
        DO 80 I = 2, 639
          Z(I) = Z(I) + R(I) * 0.25
          Z(I) = Z(I) - R(I-1) * 0.125
   80   CONTINUE
   90 CONTINUE
      END
