
      PROGRAM CONDUCT
      PARAMETER (M = 128, NT = 4)
      DIMENSION T(M,M), COND(M), FLUX(M), CAP(M)
      DO 60 STEP = 1, NT
        DO 20 J = 1, M
          CAP(J) = CAP(J) + 1.0
          DO 10 I = 2, 127
            T(I,J) = T(I,J) + COND(I) * (T(I+1,J) - T(I-1,J))
   10     CONTINUE
   20   CONTINUE
        DO 40 I = 2, 127
          DO 30 J = 2, 127
            T(I,J) = T(I,J) + FLUX(I) * (T(I,J+1) - T(I,J-1))
   30     CONTINUE
   40   CONTINUE
   60 CONTINUE
      END
