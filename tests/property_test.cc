// Cross-module property tests, parameterised over all nine workloads: the
// classical paging-theory invariants must hold on every generated trace.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/robust/backoff.h"
#include "src/support/str.h"
#include "src/trace/trace_io.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/hierarchy.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

class WorkloadPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const CompiledProgram& Compiled(const std::string& name) {
    static auto* cache = new std::map<std::string, std::unique_ptr<CompiledProgram>>();
    auto it = cache->find(name);
    if (it == cache->end()) {
      auto cp = CompiledProgram::FromSource(FindWorkload(name).source);
      EXPECT_TRUE(cp.ok());
      it = cache->emplace(name, std::make_unique<CompiledProgram>(std::move(cp).value())).first;
    }
    return *it->second;
  }

  static const Trace& Refs(const std::string& name) {
    static auto* cache = new std::map<std::string, std::unique_ptr<Trace>>();
    auto it = cache->find(name);
    if (it == cache->end()) {
      it = cache->emplace(name, std::make_unique<Trace>(Compiled(name).trace().ReferencesOnly()))
               .first;
    }
    return *it->second;
  }
};

TEST_P(WorkloadPropertyTest, OptIsALowerBoundForDemandPolicies) {
  const Trace& t = Refs(GetParam());
  uint32_t v = t.virtual_pages();
  for (uint32_t m : {v / 8 + 1, v / 3 + 1, v}) {
    uint64_t opt = SimulateFixed(t, m, Replacement::kOpt).faults;
    EXPECT_LE(opt, SimulateFixed(t, m, Replacement::kLru).faults) << "m=" << m;
    EXPECT_LE(opt, SimulateFixed(t, m, Replacement::kFifo).faults) << "m=" << m;
  }
}

TEST_P(WorkloadPropertyTest, LruInclusionProperty) {
  // Stack property: faults(m) computed by the sweep is non-increasing and
  // matches direct simulation at spot-checked points.
  const Trace& t = Refs(GetParam());
  uint32_t v = t.virtual_pages();
  auto sweep = LruSweep(t, v);
  for (size_t i = 1; i < sweep.size(); ++i) {
    ASSERT_LE(sweep[i].faults, sweep[i - 1].faults);
  }
  for (uint32_t m : {1u, v / 2 + 1, v}) {
    EXPECT_EQ(sweep[m - 1].faults, SimulateFixed(t, m, Replacement::kLru).faults) << "m=" << m;
  }
}

TEST_P(WorkloadPropertyTest, FullResidencyFaultsEqualDistinctPages) {
  const Trace& t = Refs(GetParam());
  TraceStats stats = t.ComputeStats();
  EXPECT_EQ(SimulateFixed(t, t.virtual_pages(), Replacement::kLru).faults, stats.distinct_pages);
  EXPECT_EQ(SimulateFixed(t, t.virtual_pages(), Replacement::kOpt).faults, stats.distinct_pages);
  EXPECT_EQ(SimulateWs(t, t.reference_count()).faults, stats.distinct_pages);
}

TEST_P(WorkloadPropertyTest, EveryPolicyFaultsAtLeastColdMisses) {
  const Trace& t = Refs(GetParam());
  TraceStats stats = t.ComputeStats();
  uint32_t v = t.virtual_pages();
  EXPECT_GE(SimulateFixed(t, v / 4 + 1, Replacement::kLru).faults, stats.distinct_pages);
  EXPECT_GE(SimulateWs(t, 1000).faults, stats.distinct_pages);
  CdOptions cd;
  cd.selection = DirectiveSelection::kOutermost;
  EXPECT_GE(SimulateCd(Compiled(GetParam()).trace(), cd).faults, stats.distinct_pages);
}

TEST_P(WorkloadPropertyTest, WsFaultsMonotoneInTau) {
  const Trace& t = Refs(GetParam());
  uint64_t prev = ~0ull;
  for (uint64_t tau : {10u, 100u, 1000u, 10000u, 100000u}) {
    uint64_t f = SimulateWs(t, tau).faults;
    EXPECT_LE(f, prev) << "tau=" << tau;
    prev = f;
  }
}

TEST_P(WorkloadPropertyTest, CdResidencyNeverExceedsHolding) {
  const Trace& t = Compiled(GetParam()).trace();
  for (auto sel : {DirectiveSelection::kOutermost, DirectiveSelection::kInnermost}) {
    CdOptions options;
    options.selection = sel;
    SimResult r = SimulateCd(t, options);
    EXPECT_GT(r.faults, 0u);
    EXPECT_LE(r.max_resident, t.virtual_pages());
    EXPECT_GT(r.mean_memory, 0.0);
  }
}

TEST_P(WorkloadPropertyTest, CdOuterFaultsNoMoreThanInner) {
  // The outermost selection holds supersets of every inner selection's
  // locality, so it cannot fault more.
  const Trace& t = Compiled(GetParam()).trace();
  CdOptions outer;
  outer.selection = DirectiveSelection::kOutermost;
  CdOptions inner;
  inner.selection = DirectiveSelection::kInnermost;
  EXPECT_LE(SimulateCd(t, outer).faults, SimulateCd(t, inner).faults);
}

TEST_P(WorkloadPropertyTest, CdAvailabilityRespectsPhysicalLimit) {
  const Trace& t = Compiled(GetParam()).trace();
  CdOptions options;
  options.selection = DirectiveSelection::kAvailability;
  options.available_frames = 24;
  SimResult r = SimulateCd(t, options);
  EXPECT_LE(r.max_resident, 24u);
}

TEST_P(WorkloadPropertyTest, StFormulaHoldsForAllPolicies) {
  const Trace& t = Refs(GetParam());
  SimOptions options;
  SimResult lru = SimulateFixed(t, 16, Replacement::kLru, options);
  EXPECT_DOUBLE_EQ(lru.space_time,
                   lru.mean_memory * static_cast<double>(lru.references) +
                       static_cast<double>(lru.faults) * 2000.0);
  SimResult ws = SimulateWs(t, 500, options);
  EXPECT_NEAR(ws.space_time,
              ws.mean_memory * static_cast<double>(ws.references) +
                  static_cast<double>(ws.faults) * 2000.0,
              1.0);
}

TEST_P(WorkloadPropertyTest, TraceSerialisationRoundTrips) {
  const Trace& t = Compiled(GetParam()).trace();
  // Round-trip a prefix (full traces are large; the format is line-uniform).
  Trace prefix(t.name());
  prefix.set_virtual_pages(t.virtual_pages());
  size_t count = 0;
  for (const TraceEvent& e : t.events()) {
    if (count++ > 20000) {
      break;
    }
    switch (e.kind) {
      case TraceEvent::Kind::kRef:
        prefix.AddRef(e.value);
        break;
      case TraceEvent::Kind::kDirective:
        prefix.AddDirective(t.directive(e.value));
        break;
      case TraceEvent::Kind::kLoopEnter:
        prefix.AddLoopEnter(e.value);
        break;
      case TraceEvent::Kind::kLoopExit:
        prefix.AddLoopExit(e.value);
        break;
    }
  }
  auto parsed = TraceFromString(TraceToString(prefix));
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed.value(), prefix);
}

TEST_P(WorkloadPropertyTest, LocksNeverIncreaseFaults) {
  const Trace& t = Compiled(GetParam()).trace();
  for (auto sel : {DirectiveSelection::kInnermost, DirectiveSelection::kOutermost}) {
    CdOptions with;
    with.selection = sel;
    with.honor_locks = true;
    CdOptions without = with;
    without.honor_locks = false;
    // Pinned pages can only prevent evictions of soon-reused pages; with
    // unbounded memory they never force extra faults.
    EXPECT_LE(SimulateCd(t, with).faults, SimulateCd(t, without).faults + 5)
        << DirectiveSelectionName(sel);
  }
}

TEST_P(WorkloadPropertyTest, HierarchyNeverChangesRamLevelBehaviour) {
  // The hierarchy lives below RAM: the RAM policy's fault count, mean memory
  // and max residency are invariant under any shape; only service times move.
  const Trace& t = Refs(GetParam());
  SimResult flat = SimulateFixed(t, 16, Replacement::kLru);
  for (const std::string& text :
       {std::string("nvm:64:60,disk:*:2000"),
        std::string("nvm:16:60,ssd:64:400,disk:*:2000")}) {
    HierarchySpec spec = HierarchySpec::Parse(text).value();
    SimOptions options;
    options.hierarchy = &spec;
    SimResult layered = SimulateFixed(t, 16, Replacement::kLru, options);
    EXPECT_EQ(layered.faults, flat.faults) << text;
    EXPECT_EQ(layered.mean_memory, flat.mean_memory) << text;
    EXPECT_EQ(layered.max_resident, flat.max_resident) << text;
    EXPECT_LE(layered.elapsed, flat.elapsed) << text;  // fast levels only help
  }
}

TEST_P(WorkloadPropertyTest, VictimCacheHitsMonotoneInItsCapacity) {
  // A bigger victim cache holds a superset of demoted pages (LRU-style stack
  // property transplanted below RAM), so its hit count never drops and the
  // total elapsed time never rises.
  const Trace& t = Refs(GetParam());
  uint64_t prev_hits = 0;
  uint64_t prev_elapsed = ~0ull;
  for (uint32_t capacity : {8u, 32u, 128u, 512u}) {
    HierarchySpec spec =
        HierarchySpec::Parse(StrCat("nvm:", capacity, ":60,disk:*:2000")).value();
    SimOptions options;
    options.hierarchy = &spec;
    SimResult r = SimulateFixed(t, 16, Replacement::kLru, options);
    ASSERT_EQ(r.hierarchy_levels.size(), 2u);
    EXPECT_GE(r.hierarchy_levels[0].hits, prev_hits) << "capacity=" << capacity;
    EXPECT_LE(r.elapsed, prev_elapsed) << "capacity=" << capacity;
    prev_hits = r.hierarchy_levels[0].hits;
    prev_elapsed = r.elapsed;
  }
}

TEST_P(WorkloadPropertyTest, ElapsedMonotoneInLevelLatency) {
  const Trace& t = Refs(GetParam());
  uint64_t prev = 0;
  for (uint64_t latency : {20ull, 200ull, 2000ull}) {
    HierarchySpec spec = HierarchySpec::Legacy(latency);
    SimOptions options;
    options.fault_service_time = latency;
    options.hierarchy = &spec;
    uint64_t elapsed = SimulateWs(t, 2000, options).elapsed;
    EXPECT_GE(elapsed, prev) << "latency=" << latency;
    prev = elapsed;
  }
}

TEST(FifoBeladyTest, ClassicAnomalyTraceFaultsMoreWithMoreFrames) {
  // Belady's canonical FIFO anomaly: 9 faults at 3 frames, 10 at 4. The
  // fixture pins the simulator's FIFO semantics (and documents why the
  // monotonicity property above is stated for stack policies only).
  Trace t("belady");
  for (PageId p : {0u, 1u, 2u, 3u, 0u, 1u, 4u, 0u, 1u, 2u, 3u, 4u}) {
    t.AddRef(p);
  }
  t.set_virtual_pages(5);
  EXPECT_EQ(SimulateFixed(t, 3, Replacement::kFifo).faults, 9u);
  EXPECT_EQ(SimulateFixed(t, 4, Replacement::kFifo).faults, 10u);
  // LRU, a stack policy, is immune on the same string.
  EXPECT_LE(SimulateFixed(t, 4, Replacement::kLru).faults,
            SimulateFixed(t, 3, Replacement::kLru).faults);
}

TEST(FifoBeladyTest, AnomalySurvivesBelowAVictimCache) {
  // The hierarchy must not mask RAM-level anomalies: the same fault counts
  // appear under a fast NVM level, only service times change.
  Trace t("belady");
  for (PageId p : {0u, 1u, 2u, 3u, 0u, 1u, 4u, 0u, 1u, 2u, 3u, 4u}) {
    t.AddRef(p);
  }
  t.set_virtual_pages(5);
  HierarchySpec spec = HierarchySpec::Parse("nvm:8:60,disk:*:2000").value();
  SimOptions options;
  options.hierarchy = &spec;
  EXPECT_EQ(SimulateFixed(t, 3, Replacement::kFifo, options).faults, 9u);
  EXPECT_EQ(SimulateFixed(t, 4, Replacement::kFifo, options).faults, 10u);
}

INSTANTIATE_TEST_SUITE_P(AllNine, WorkloadPropertyTest,
                         ::testing::Values("MAIN", "FDJAC", "TQL", "FIELD", "INIT", "APPROX",
                                           "HYBRJ", "CONDUCT", "HWSCRT"));

// ---- BackoffPolicy schedule properties over a seed grid, evaluated from
// many threads at once: the cdmm-serve retry schedule must be a pure
// function of (seed, stream, attempt), so every thread count and call order
// reproduces the identical table, with every entry bounded by the cap and
// monotone per stream.

TEST(BackoffPropertyTest, ScheduleIsPureBoundedAndMonotoneAtAnyThreadCount) {
  constexpr uint64_t kSeeds = 12;
  constexpr uint64_t kStreams = 32;
  constexpr int kRetries = 6;

  auto table_for = [&](uint64_t seed) {
    BackoffPolicy policy;
    policy.seed = seed;
    policy.max_retries = kRetries;
    std::vector<uint64_t> table;
    table.reserve(kStreams * kRetries);
    for (uint64_t stream = 0; stream < kStreams; ++stream) {
      for (int attempt = 0; attempt < kRetries; ++attempt) {
        table.push_back(policy.Delay(stream, attempt));
      }
    }
    return table;
  };

  // Reference tables, computed serially.
  std::vector<std::vector<uint64_t>> reference;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    reference.push_back(table_for(seed));
  }

  // Each seed's full schedule obeys the bound and the per-stream monotone
  // guarantee (WorstCase is the sum bound the serve retry loop charges).
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    BackoffPolicy policy;
    policy.seed = seed;
    policy.max_retries = kRetries;
    const std::vector<uint64_t>& table = reference[seed - 1];
    for (uint64_t stream = 0; stream < kStreams; ++stream) {
      uint64_t prev = 0;
      uint64_t total = 0;
      for (int attempt = 0; attempt < kRetries; ++attempt) {
        uint64_t delay = table[stream * kRetries + static_cast<uint64_t>(attempt)];
        EXPECT_LE(delay, policy.cap);
        EXPECT_GE(delay, prev);
        prev = delay;
        total += delay;
      }
      EXPECT_LE(total, policy.WorstCase());
    }
  }

  // Recompute every table from competing threads (each thread walks the
  // seeds in a different rotation) and require bit-identical results.
  for (unsigned threads : {2u, 8u}) {
    std::vector<std::vector<std::vector<uint64_t>>> recomputed(
        threads, std::vector<std::vector<uint64_t>>(kSeeds));
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        for (uint64_t k = 0; k < kSeeds; ++k) {
          uint64_t seed = 1 + (k + t) % kSeeds;
          recomputed[t][seed - 1] = table_for(seed);
        }
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
    for (unsigned t = 0; t < threads; ++t) {
      for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        EXPECT_EQ(recomputed[t][seed - 1], reference[seed - 1])
            << "threads=" << threads << " t=" << t << " seed=" << seed;
      }
    }
  }
}

}  // namespace
}  // namespace cdmm
