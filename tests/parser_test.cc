#include "src/lang/parser.h"

#include <gtest/gtest.h>

#include "src/lang/sema.h"

namespace cdmm {
namespace {

Program ParseOk(std::string_view source) {
  auto program = Parse(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().ToString());
  return std::move(program).value();
}

std::string ParseError(std::string_view source) {
  auto program = Parse(source);
  EXPECT_FALSE(program.ok());
  return program.ok() ? "" : program.error().ToString();
}

constexpr char kMinimal[] = R"(
      PROGRAM TINY
      DIMENSION A(10)
      DO 10 I = 1, 10
        A(I) = 1.0
   10 CONTINUE
      END
)";

TEST(ParserTest, MinimalProgram) {
  Program p = ParseOk(kMinimal);
  EXPECT_EQ(p.name, "TINY");
  ASSERT_EQ(p.arrays.size(), 1u);
  EXPECT_EQ(p.arrays[0].name, "A");
  EXPECT_EQ(p.arrays[0].rows, 10);
  EXPECT_TRUE(p.arrays[0].IsVector());
  EXPECT_EQ(p.loop_count, 1u);
}

TEST(ParserTest, TwoDimensionalArray) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION A(3,7)
      END
)");
  ASSERT_EQ(p.arrays.size(), 1u);
  EXPECT_EQ(p.arrays[0].rows, 3);
  EXPECT_EQ(p.arrays[0].cols, 7);
  EXPECT_FALSE(p.arrays[0].IsVector());
  EXPECT_EQ(p.arrays[0].element_count(), 21);
}

TEST(ParserTest, MultipleArraysInOneDimension) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION A(3), B(4,5), C(6)
      END
)");
  ASSERT_EQ(p.arrays.size(), 3u);
  EXPECT_EQ(p.arrays[1].name, "B");
  EXPECT_EQ(p.arrays[2].rows, 6);
}

TEST(ParserTest, ParameterResolvedInDimensionAndBounds) {
  Program p = ParseOk(R"(
      PROGRAM P
      PARAMETER (N = 8, M = 4)
      DIMENSION A(N,M)
      DO 10 I = 1, N
        A(I,1) = 0.0
   10 CONTINUE
      END
)");
  EXPECT_EQ(p.parameters.at("N"), 8);
  EXPECT_EQ(p.arrays[0].rows, 8);
  EXPECT_EQ(p.arrays[0].cols, 4);
  const Stmt& loop = *p.body[0];
  EXPECT_EQ(loop.upper.value, 8);
  EXPECT_EQ(loop.upper.spelling, "N");
  EXPECT_EQ(loop.upper.kind, LoopBound::Kind::kParameter);
}

TEST(ParserTest, NestedLoopsGetPreorderIds) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION A(4,4)
      DO 20 I = 1, 4
        DO 10 J = 1, 4
          A(J,I) = 0.0
   10   CONTINUE
   20 CONTINUE
      END
)");
  EXPECT_EQ(p.loop_count, 2u);
  const Stmt& outer = *p.body[0];
  EXPECT_EQ(outer.loop_id, 1u);
  ASSERT_EQ(outer.body.size(), 1u);
  EXPECT_EQ(outer.body[0]->loop_id, 2u);
}

TEST(ParserTest, SharedTerminalLabelClosesAllLoops) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION A(4,4)
      DO 10 I = 1, 4
      DO 10 J = 1, 4
        A(J,I) = 1.0
   10 CONTINUE
      END
)");
  EXPECT_EQ(p.loop_count, 2u);
  const Stmt& outer = *p.body[0];
  EXPECT_EQ(outer.label, 10);
  ASSERT_EQ(outer.body.size(), 1u);
  EXPECT_EQ(outer.body[0]->label, 10);
}

TEST(ParserTest, LoopWithStep) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION A(16)
      DO 10 I = 1, 16, 3
        A(I) = 0.0
   10 CONTINUE
      END
)");
  EXPECT_EQ(p.body[0]->step, 3);
}

TEST(ParserTest, NegativeStepAndBounds) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION A(16)
      DO 10 I = 16, 1, -1
        A(I) = 0.0
   10 CONTINUE
      END
)");
  EXPECT_EQ(p.body[0]->step, -1);
  EXPECT_EQ(p.body[0]->lower.value, 16);
}

TEST(ParserTest, TriangularLoopVariableBound) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION A(8,8)
      DO 20 J = 1, 8
        DO 10 I = J, 8
          A(I,J) = 0.0
   10   CONTINUE
   20 CONTINUE
      END
)");
  const Stmt& inner = *p.body[0]->body[0];
  EXPECT_EQ(inner.lower.kind, LoopBound::Kind::kVariable);
  EXPECT_EQ(inner.lower.spelling, "J");
}

TEST(ParserTest, SubscriptOffsets) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION V(10)
      DO 10 I = 2, 9
        V(I) = V(I+1) + V(I-1)
   10 CONTINUE
      END
)");
  const Stmt& assign = *p.body[0]->body[0];
  auto refs = assign.DirectArrayRefs();
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0]->indices[0].Canonical(), "I");
  EXPECT_EQ(refs[1]->indices[0].Canonical(), "I+1");
  EXPECT_EQ(refs[2]->indices[0].Canonical(), "I-1");
}

TEST(ParserTest, ConstantSubscript) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION V(10)
      V(3) = 1.0
      END
)");
  const Stmt& assign = *p.body[0];
  ASSERT_TRUE(assign.lhs_array.has_value());
  EXPECT_TRUE(assign.lhs_array->indices[0].IsConstant());
  EXPECT_EQ(assign.lhs_array->indices[0].offset, 3);
}

TEST(ParserTest, ScalarAssignment) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION V(4)
      ACC = V(1) * 2.0 + V(2) / 3.0 - 1.0
      END
)");
  const Stmt& assign = *p.body[0];
  EXPECT_FALSE(assign.lhs_array.has_value());
  EXPECT_EQ(assign.lhs_scalar, "ACC");
  EXPECT_EQ(assign.DirectArrayRefs().size(), 2u);
}

TEST(ParserTest, ParenthesisedExpressionsAndUnaryMinus) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION V(4)
      V(1) = -(V(2) + 1.0) * (V(3) - V(4))
      END
)");
  EXPECT_EQ(p.body[0]->DirectArrayRefs().size(), 4u);
}

TEST(ParserTest, UnlabelledContinueIsNoOp) {
  Program p = ParseOk(R"(
      PROGRAM P
      DIMENSION V(4)
      CONTINUE
      V(1) = 0.0
      END
)");
  EXPECT_EQ(p.body.size(), 1u);
}

TEST(ParserTest, RealTypeDeclarationActsAsDimension) {
  Program p = ParseOk(R"(
      PROGRAM P
      REAL A(8,4), X, B(16)
      INTEGER I, COUNTS(32)
      A(1,1) = B(1) + COUNTS(1)
      END
)");
  ASSERT_EQ(p.arrays.size(), 3u);
  EXPECT_EQ(p.arrays[0].name, "A");
  EXPECT_EQ(p.arrays[0].cols, 4);
  EXPECT_EQ(p.arrays[1].name, "B");
  EXPECT_EQ(p.arrays[2].name, "COUNTS");
  EXPECT_EQ(p.arrays[2].rows, 32);
}

TEST(ParserTest, DoublePrecisionDeclaration) {
  Program p = ParseOk(R"(
      PROGRAM P
      DOUBLEPRECISION D(64)
      D(1) = 0.0
      END
)");
  ASSERT_EQ(p.arrays.size(), 1u);
  EXPECT_EQ(p.arrays[0].name, "D");
}

TEST(ParserTest, ScalarOnlyTypeDeclarationIsNoOp) {
  Program p = ParseOk(R"(
      PROGRAM P
      REAL X, Y, Z
      X = 1.0
      END
)");
  EXPECT_TRUE(p.arrays.empty());
}

TEST(ParserErrorTest, DimensionRequiresDimensions) {
  std::string err = ParseError(R"(
      PROGRAM P
      DIMENSION X
      END
)");
  EXPECT_FALSE(err.empty());
}

// ---- error cases ----

TEST(ParserErrorTest, MissingProgramKeyword) {
  EXPECT_NE(ParseError("      DIMENSION A(4)\n      END\n").find("PROGRAM"), std::string::npos);
}

TEST(ParserErrorTest, MissingEnd) {
  EXPECT_NE(ParseError("      PROGRAM P\n      DIMENSION A(4)\n").find("END"), std::string::npos);
}

TEST(ParserErrorTest, UnterminatedLoop) {
  std::string err = ParseError(R"(
      PROGRAM P
      DIMENSION A(4)
      DO 10 I = 1, 4
        A(I) = 0.0
      END
)");
  EXPECT_NE(err.find("unterminated"), std::string::npos);
}

TEST(ParserErrorTest, MismatchedContinueLabel) {
  std::string err = ParseError(R"(
      PROGRAM P
      DIMENSION A(4)
      DO 10 I = 1, 4
        A(I) = 0.0
   20 CONTINUE
      END
)");
  EXPECT_NE(err.find("does not terminate"), std::string::npos);
}

TEST(ParserErrorTest, ContinueOutsideLoop) {
  std::string err = ParseError(R"(
      PROGRAM P
   10 CONTINUE
      END
)");
  EXPECT_NE(err.find("outside any DO loop"), std::string::npos);
}

TEST(ParserErrorTest, ZeroStepRejected) {
  std::string err = ParseError(R"(
      PROGRAM P
      DIMENSION A(4)
      DO 10 I = 1, 4, 0
        A(I) = 0.0
   10 CONTINUE
      END
)");
  EXPECT_NE(err.find("step"), std::string::npos);
}

TEST(ParserErrorTest, NonPositiveArrayExtent) {
  std::string err = ParseError(R"(
      PROGRAM P
      PARAMETER (N = -3)
      DIMENSION A(N)
      END
)");
  EXPECT_NE(err.find("non-positive"), std::string::npos);
}

TEST(ParserErrorTest, DuplicateParameter) {
  std::string err = ParseError(R"(
      PROGRAM P
      PARAMETER (N = 1, N = 2)
      END
)");
  EXPECT_NE(err.find("duplicate PARAMETER"), std::string::npos);
}

TEST(ParserErrorTest, UnknownParameterInDimension) {
  std::string err = ParseError(R"(
      PROGRAM P
      DIMENSION A(NOPE)
      END
)");
  EXPECT_NE(err.find("unknown PARAMETER"), std::string::npos);
}

TEST(ParserErrorTest, ThreeSubscriptsRejected) {
  std::string err = ParseError(R"(
      PROGRAM P
      DIMENSION A(4,4)
      A(1,2,3) = 0.0
      END
)");
  EXPECT_NE(err.find("subscripts"), std::string::npos);
}

TEST(ParserErrorTest, ErrorsCarryLocations) {
  auto program = Parse("      PROGRAM P\n      A = #\n      END\n");
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.error().location.line, 2u);
}

// ---- round-trip property: print then re-parse gives the same structure ----

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParsePrintIsStable) {
  Program p1 = ParseOk(GetParam());
  std::string printed1 = ProgramToString(p1);
  auto p2 = Parse(printed1);
  ASSERT_TRUE(p2.ok()) << p2.error().ToString() << "\nlisting was:\n" << printed1;
  std::string printed2 = ProgramToString(p2.value());
  EXPECT_EQ(printed1, printed2);
  EXPECT_EQ(p1.loop_count, p2.value().loop_count);
  EXPECT_EQ(p1.arrays.size(), p2.value().arrays.size());
}

constexpr const char* kRoundTripSources[] = {
    kMinimal,
    R"(
      PROGRAM SHARED
      DIMENSION A(4,4)
      DO 10 I = 1, 4
      DO 10 J = 1, 4
        A(J,I) = A(J,I) * 2.0
   10 CONTINUE
      END
)",
    R"(
      PROGRAM TRI
      PARAMETER (N = 6)
      DIMENSION A(N,N), D(N)
      DO 30 J = 1, N
        D(J) = A(J,J)
        DO 20 I = J, N
          A(I,J) = A(I,J) - D(J)
   20   CONTINUE
   30 CONTINUE
      END
)",
};

INSTANTIATE_TEST_SUITE_P(Sources, RoundTripTest, ::testing::ValuesIn(kRoundTripSources));

}  // namespace
}  // namespace cdmm
