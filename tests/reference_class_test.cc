#include "src/analysis/reference_class.h"

#include <gtest/gtest.h>

#include "src/analysis/loop_tree.h"
#include "src/lang/sema.h"

namespace cdmm {
namespace {

struct Fixture {
  Program program;
  std::unique_ptr<LoopTree> tree;
  std::vector<RefSite> sites;

  explicit Fixture(std::string_view source) {
    auto parsed = ParseAndCheck(source);
    EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().ToString());
    program = std::move(parsed).value();
    tree = std::make_unique<LoopTree>(program);
    for (const LoopNode* root : tree->roots()) {
      auto s = CollectRefSites(*root);
      sites.insert(sites.end(), s.begin(), s.end());
    }
  }

  const RefSite& SiteOf(const std::string& array, size_t occurrence = 0) {
    size_t seen = 0;
    for (const RefSite& site : sites) {
      if (site.ref->name == array) {
        if (seen == occurrence) {
          return site;
        }
        ++seen;
      }
    }
    ADD_FAILURE() << "no site for " << array;
    static RefSite dummy;
    return dummy;
  }
};

// The paper's Figure 1: E and F referenced row-wise inside loop 20 (inner
// index J drives the column subscript), G and H column-wise inside loop 30
// (inner index K drives the row subscript).
constexpr char kFigure1[] = R"(
      PROGRAM FIG1
      PARAMETER (M = 200, N = 10)
      DIMENSION E(M,N), F(M,N), G(M,N), H(M,N)
      DO 10 I = 1, N
        DO 20 J = 1, N
          E(I,J) = F(I,J)
   20   CONTINUE
        DO 30 K = 1, M
          G(K,I) = H(K,I)
   30   CONTINUE
   10 CONTINUE
      END
)";

TEST(ReferenceClassTest, Figure1RowWiseAndColumnWise) {
  Fixture f(kFigure1);
  EXPECT_EQ(ClassifyOrder(f.SiteOf("E")), RefOrder::kRowWise);
  EXPECT_EQ(ClassifyOrder(f.SiteOf("F")), RefOrder::kRowWise);
  EXPECT_EQ(ClassifyOrder(f.SiteOf("G")), RefOrder::kColumnWise);
  EXPECT_EQ(ClassifyOrder(f.SiteOf("H")), RefOrder::kColumnWise);
}

TEST(ReferenceClassTest, Figure1SubscriptVariations) {
  Fixture f(kFigure1);
  const LoopNode& loop10 = *f.tree->roots()[0];       // I loop
  const LoopNode& loop20 = *loop10.children[0];       // J loop
  const LoopNode& loop30 = *loop10.children[1];       // K loop

  const RefSite& e = f.SiteOf("E");
  // E(I,J) relative to loop 20: row subscript I is outer, column J is self.
  EXPECT_EQ(ClassifySubscript(e.ref->indices[0], e, loop20), Variation::kOuter);
  EXPECT_EQ(ClassifySubscript(e.ref->indices[1], e, loop20), Variation::kSelf);
  // Relative to loop 10: row is self, column varies inside.
  EXPECT_EQ(ClassifySubscript(e.ref->indices[0], e, loop10), Variation::kSelf);
  EXPECT_EQ(ClassifySubscript(e.ref->indices[1], e, loop10), Variation::kInner);

  const RefSite& g = f.SiteOf("G");
  // G(K,I) relative to loop 30: row K is self, column I is outer.
  EXPECT_EQ(ClassifySubscript(g.ref->indices[0], g, loop30), Variation::kSelf);
  EXPECT_EQ(ClassifySubscript(g.ref->indices[1], g, loop30), Variation::kOuter);
  // Relative to loop 10: row varies inside, column is self.
  EXPECT_EQ(ClassifySubscript(g.ref->indices[0], g, loop10), Variation::kInner);
  EXPECT_EQ(ClassifySubscript(g.ref->indices[1], g, loop10), Variation::kSelf);
}

TEST(ReferenceClassTest, VectorAndConstantOrders) {
  Fixture f(R"(
      PROGRAM P
      DIMENSION V(8), A(8,8)
      DO 10 I = 1, 8
        V(I) = A(3,5) + V(2)
   10 CONTINUE
      END
)");
  EXPECT_EQ(ClassifyOrder(f.SiteOf("V", 0)), RefOrder::kVector);
  EXPECT_EQ(ClassifyOrder(f.SiteOf("A")), RefOrder::kInvariant);
}

TEST(ReferenceClassTest, DiagonalOrder) {
  Fixture f(R"(
      PROGRAM P
      DIMENSION A(8,8)
      DO 10 I = 1, 8
        A(I,I) = 0.0
   10 CONTINUE
      END
)");
  EXPECT_EQ(ClassifyOrder(f.SiteOf("A")), RefOrder::kDiagonal);
}

TEST(ReferenceClassTest, ConstantSubscriptClassifiesConstant) {
  Fixture f(R"(
      PROGRAM P
      DIMENSION A(8,8)
      DO 10 I = 1, 8
        A(3,I) = 0.0
   10 CONTINUE
      END
)");
  const RefSite& a = f.SiteOf("A");
  const LoopNode& loop = *f.tree->roots()[0];
  EXPECT_EQ(ClassifySubscript(a.ref->indices[0], a, loop), Variation::kConstant);
  EXPECT_EQ(ClassifySubscript(a.ref->indices[1], a, loop), Variation::kSelf);
  EXPECT_EQ(ClassifyOrder(a), RefOrder::kRowWise);
}

TEST(ReferenceClassTest, CollectRefSitesVisitsNestedLoops) {
  Fixture f(kFigure1);
  // E, F, G, H: one reference each, gathered across both inner loops.
  EXPECT_EQ(f.sites.size(), 4u);
}

TEST(ReferenceClassTest, LhsListedBeforeRhsWithinStatement) {
  Fixture f(kFigure1);
  EXPECT_EQ(f.sites[0].ref->name, "E");
  EXPECT_EQ(f.sites[1].ref->name, "F");
  EXPECT_EQ(f.sites[2].ref->name, "G");
  EXPECT_EQ(f.sites[3].ref->name, "H");
}

TEST(ReferenceClassTest, SubscriptBinderFindsLoop) {
  Fixture f(kFigure1);
  const RefSite& e = f.SiteOf("E");
  const LoopNode* binder = SubscriptBinder(e.ref->indices[1], e);
  ASSERT_NE(binder, nullptr);
  EXPECT_EQ(binder->loop->label, 20);
  EXPECT_EQ(SubscriptBinder(IndexExpr{"", 5, {}}, e), nullptr);
}

TEST(ReferenceClassTest, VariationNamesAreStable) {
  EXPECT_STREQ(VariationName(Variation::kSelf), "self");
  EXPECT_STREQ(VariationName(Variation::kInner), "inner");
  EXPECT_STREQ(RefOrderName(RefOrder::kColumnWise), "column-wise");
  EXPECT_STREQ(RefOrderName(RefOrder::kVector), "vector");
}

}  // namespace
}  // namespace cdmm
