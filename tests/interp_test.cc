#include "src/interp/interpreter.h"

#include <gtest/gtest.h>

#include <set>

#include "src/interp/address_map.h"
#include "src/lang/sema.h"

namespace cdmm {
namespace {

struct Compiled {
  Program program;
  std::unique_ptr<LoopTree> tree;
  std::unique_ptr<LocalityAnalysis> locality;
  DirectivePlan plan;

  explicit Compiled(std::string_view source) {
    auto parsed = ParseAndCheck(source);
    EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().ToString());
    program = std::move(parsed).value();
    tree = std::make_unique<LoopTree>(program);
    locality = std::make_unique<LocalityAnalysis>(program, *tree, LocalityOptions{});
    plan = BuildDirectivePlan(*tree, *locality);
  }

  Trace Run(const InterpOptions& options = {}) {
    return GenerateTrace(program, *tree, &plan, options);
  }
  Trace RunNoDirectives(const InterpOptions& options = {}) {
    return GenerateTrace(program, *tree, nullptr, options);
  }
};

std::vector<PageId> RefPages(const Trace& trace) {
  std::vector<PageId> pages;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceEvent::Kind::kRef) {
      pages.push_back(e.value);
    }
  }
  return pages;
}

TEST(AddressMapTest, ColumnMajorPageAssignment) {
  auto parsed = ParseAndCheck(R"(
      PROGRAM P
      PARAMETER (M = 128)
      DIMENSION A(M,4), V(64)
      END
)");
  ASSERT_TRUE(parsed.ok());
  AddressMap map(parsed.value(), PageGeometry{});
  // A: 512 elements = 8 pages starting at 0; V: 64 elements = 1 page at 8.
  EXPECT_EQ(map.total_pages(), 9u);
  EXPECT_EQ(map.PageOf("A", 1, 1), 0u);
  EXPECT_EQ(map.PageOf("A", 64, 1), 0u);
  EXPECT_EQ(map.PageOf("A", 65, 1), 1u);    // second page of column 1
  EXPECT_EQ(map.PageOf("A", 1, 2), 2u);     // column 2 starts a new page (M=128)
  EXPECT_EQ(map.PageOf("A", 128, 4), 7u);
  EXPECT_EQ(map.PageOf("V", 1, 1), 8u);
  EXPECT_EQ(map.PageOf("V", 64, 1), 8u);
}

TEST(AddressMapTest, ColumnsShareAPageWhenNotAligned) {
  auto parsed = ParseAndCheck(R"(
      PROGRAM P
      DIMENSION A(100,2)
      END
)");
  ASSERT_TRUE(parsed.ok());
  AddressMap map(parsed.value(), PageGeometry{});
  // Element (1,2) has linear index 100 -> page 1, shared with (65..100, 1).
  EXPECT_EQ(map.PageOf("A", 1, 2), map.PageOf("A", 100, 1));
}

TEST(AddressMapTest, OutOfBoundsSubscriptDies) {
  auto parsed = ParseAndCheck(R"(
      PROGRAM P
      DIMENSION A(8,8)
      END
)");
  ASSERT_TRUE(parsed.ok());
  AddressMap map(parsed.value(), PageGeometry{});
  EXPECT_DEATH(map.PageOf("A", 0, 1), "out of");
  EXPECT_DEATH(map.PageOf("A", 9, 1), "out of");
  EXPECT_DEATH(map.PageOf("A", 1, 9), "out of");
}

TEST(InterpreterTest, SequentialVectorSweep) {
  Compiled c(R"(
      PROGRAM P
      PARAMETER (N = 128)
      DIMENSION V(N)
      DO 10 I = 1, N
        V(I) = 1.0
   10 CONTINUE
      END
)");
  Trace t = c.RunNoDirectives();
  auto pages = RefPages(t);
  ASSERT_EQ(pages.size(), 128u);
  // First 64 references hit page 0, next 64 hit page 1.
  EXPECT_EQ(pages.front(), 0u);
  EXPECT_EQ(pages[63], 0u);
  EXPECT_EQ(pages[64], 1u);
  EXPECT_EQ(pages.back(), 1u);
}

TEST(InterpreterTest, ReadsPrecedeWriteWithinStatement) {
  Compiled c(R"(
      PROGRAM P
      DIMENSION A(64), B(64), D(64)
      A(1) = B(1) + D(1)
      END
)");
  Trace t = c.RunNoDirectives();
  auto pages = RefPages(t);
  // B page (1), D page (2), then the write to A page (0).
  ASSERT_EQ(pages.size(), 3u);
  EXPECT_EQ(pages[0], 1u);
  EXPECT_EQ(pages[1], 2u);
  EXPECT_EQ(pages[2], 0u);
}

TEST(InterpreterTest, TriangularLoopBoundsEvaluate) {
  Compiled c(R"(
      PROGRAM P
      PARAMETER (N = 4)
      DIMENSION A(N,N)
      DO 20 J = 1, N
        DO 10 I = J, N
          A(I,J) = 0.0
   10   CONTINUE
   20 CONTINUE
      END
)");
  Trace t = c.RunNoDirectives();
  // Triangular count: 4 + 3 + 2 + 1 = 10 references.
  EXPECT_EQ(t.reference_count(), 10u);
}

TEST(InterpreterTest, ZeroTripLoopEmitsNothing) {
  Compiled c(R"(
      PROGRAM P
      DIMENSION V(8)
      DO 10 I = 5, 4
        V(I) = 0.0
   10 CONTINUE
      END
)");
  Trace t = c.RunNoDirectives();
  EXPECT_EQ(t.reference_count(), 0u);
}

TEST(InterpreterTest, ZeroTripLoopStillEmitsAllocate) {
  Compiled c(R"(
      PROGRAM P
      DIMENSION V(8)
      DO 10 I = 5, 4
        V(I) = 0.0
   10 CONTINUE
      END
)");
  Trace t = c.Run();
  ASSERT_EQ(t.directives().size(), 1u);
  EXPECT_EQ(t.directives()[0].kind, DirectiveRecord::Kind::kAllocate);
}

TEST(InterpreterTest, NegativeStepLoop) {
  Compiled c(R"(
      PROGRAM P
      DIMENSION V(128)
      DO 10 I = 128, 1, -1
        V(I) = 0.0
   10 CONTINUE
      END
)");
  auto pages = RefPages(c.RunNoDirectives());
  EXPECT_EQ(pages.front(), 1u);
  EXPECT_EQ(pages.back(), 0u);
}

TEST(InterpreterTest, AllocateEmittedOnEveryLoopEntry) {
  Compiled c(R"(
      PROGRAM P
      DIMENSION A(8,8)
      DO 20 I = 1, 5
        DO 10 J = 1, 3
          A(J,I) = 0.0
   10   CONTINUE
   20 CONTINUE
      END
)");
  Trace t = c.Run();
  int allocates = 0;
  for (const DirectiveRecord& d : t.directives()) {
    allocates += d.kind == DirectiveRecord::Kind::kAllocate ? 1 : 0;
  }
  // One for the outer loop + one per outer iteration for the inner loop.
  EXPECT_EQ(allocates, 1 + 5);
}

TEST(InterpreterTest, LoopMarkersWhenRequested) {
  Compiled c(R"(
      PROGRAM P
      DIMENSION V(8)
      DO 10 I = 1, 2
        V(I) = 0.0
   10 CONTINUE
      END
)");
  InterpOptions options;
  options.emit_loop_markers = true;
  Trace t = c.Run(options);
  int enters = 0;
  int exits = 0;
  for (const TraceEvent& e : t.events()) {
    enters += e.kind == TraceEvent::Kind::kLoopEnter ? 1 : 0;
    exits += e.kind == TraceEvent::Kind::kLoopExit ? 1 : 0;
  }
  EXPECT_EQ(enters, 1);
  EXPECT_EQ(exits, 1);
}

TEST(InterpreterTest, LockListsPagesTouchedByTheSegment) {
  Compiled c(R"(
      PROGRAM P
      DIMENSION A(64), B(64), C(64)
      DO 20 I = 1, 4
        A(I) = B(I) * 2.0
        DO 10 J = 1, 4
          C(J) = A(I)
   10   CONTINUE
   20 CONTINUE
      END
)");
  Trace t = c.Run();
  // The lock site before loop 10 covers arrays A and B; their pages are 0
  // and 1.
  bool saw_lock = false;
  for (const DirectiveRecord& d : t.directives()) {
    if (d.kind == DirectiveRecord::Kind::kLock) {
      saw_lock = true;
      EXPECT_EQ(d.pages, (std::vector<PageId>{0u, 1u}));
    }
  }
  EXPECT_TRUE(saw_lock);
}

TEST(InterpreterTest, FinalUnlockReleasesEverything) {
  Compiled c(R"(
      PROGRAM P
      PARAMETER (N = 256)
      DIMENSION A(N), B(N), C(N)
      DO 20 I = 1, N
        A(I) = B(I) * 2.0
        DO 10 J = 1, 4
          C(J) = A(I)
   10   CONTINUE
   20 CONTINUE
      END
)");
  Trace t = c.Run();
  // Track lock/unlock balance: after the whole trace nothing stays locked.
  std::set<PageId> locked;
  for (const DirectiveRecord& d : t.directives()) {
    if (d.kind == DirectiveRecord::Kind::kLock) {
      locked.insert(d.pages.begin(), d.pages.end());
    } else if (d.kind == DirectiveRecord::Kind::kUnlock) {
      for (PageId p : d.pages) {
        locked.erase(p);
      }
    }
  }
  EXPECT_TRUE(locked.empty());
  // The last directive is the trailing UNLOCK.
  ASSERT_FALSE(t.directives().empty());
  EXPECT_EQ(t.directives().back().kind, DirectiveRecord::Kind::kUnlock);
}

TEST(InterpreterTest, LockSiteReleasesStalePagesAsItSlides) {
  // As the outer loop advances, the lock site re-locks the new active pages
  // and releases the old ones, so the locked set never grows past the site's
  // active window.
  Compiled c(R"(
      PROGRAM P
      PARAMETER (N = 256)
      DIMENSION A(N), C(N)
      DO 20 I = 1, N
        A(I) = 1.0
        DO 10 J = 1, 2
          C(J) = A(I)
   10   CONTINUE
   20 CONTINUE
      END
)");
  Trace t = c.Run();
  std::set<PageId> locked;
  size_t max_locked = 0;
  for (const DirectiveRecord& d : t.directives()) {
    if (d.kind == DirectiveRecord::Kind::kLock) {
      locked.insert(d.pages.begin(), d.pages.end());
    } else if (d.kind == DirectiveRecord::Kind::kUnlock) {
      for (PageId p : d.pages) {
        locked.erase(p);
      }
    }
    max_locked = std::max(max_locked, locked.size());
  }
  EXPECT_LE(max_locked, 2u);
}

TEST(InterpreterTest, TraceVirtualPagesMatchesAddressMap) {
  Compiled c(R"(
      PROGRAM P
      DIMENSION A(100,3), V(10)
      V(1) = A(1,1)
      END
)");
  Trace t = c.RunNoDirectives();
  // A: 300 elements -> 5 pages; V: 10 elements -> 1 page.
  EXPECT_EQ(t.virtual_pages(), 6u);
}

TEST(InterpreterTest, ReferenceCapDies) {
  Compiled c(R"(
      PROGRAM P
      DIMENSION V(8)
      DO 20 I = 1, 100
        DO 10 J = 1, 8
          V(J) = 0.0
   10   CONTINUE
   20 CONTINUE
      END
)");
  InterpOptions options;
  options.max_references = 10;
  EXPECT_DEATH(c.Run(options), "reference cap");
}

TEST(InterpreterTest, CustomGeometryChangesPageNumbers) {
  Compiled c(R"(
      PROGRAM P
      PARAMETER (N = 128)
      DIMENSION V(N)
      DO 10 I = 1, N
        V(I) = 1.0
   10 CONTINUE
      END
)");
  InterpOptions options;
  options.geometry.page_size_bytes = 512;  // 128 elements/page
  Trace t = c.RunNoDirectives(options);
  EXPECT_EQ(t.virtual_pages(), 1u);
}

}  // namespace
}  // namespace cdmm
