#include "src/os/multiprog.h"

#include <gtest/gtest.h>

#include "src/cdmm/pipeline.h"
#include "src/vm/hierarchy.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

// Small synthetic workload with a clear two-phase structure so the OS tests
// stay fast.
constexpr char kSmall[] = R"(
      PROGRAM SMALL
      PARAMETER (N = 256)
      DIMENSION A(N), B(N)
      DO 30 T = 1, 6
        DO 10 I = 1, N
          A(I) = A(I) + 1.0
   10   CONTINUE
        DO 20 I = 1, N
          B(I) = B(I) + A(I)
   20   CONTINUE
   30 CONTINUE
      END
)";

class OsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cp = CompiledProgram::FromSource(kSmall);
    ASSERT_TRUE(cp.ok()) << cp.error().ToString();
    program_ = std::make_unique<CompiledProgram>(std::move(cp).value());
  }

  OsProcessSpec Spec(const std::string& name, int priority) {
    return OsProcessSpec{name, &program_->trace(), priority};
  }

  std::unique_ptr<CompiledProgram> program_;
};

TEST_F(OsTest, SingleProcessCompletes) {
  OsOptions options;
  options.total_frames = 32;
  OsRunResult r = RunMultiprogrammedCd({Spec("P0", 0)}, options).value();
  ASSERT_EQ(r.processes.size(), 1u);
  EXPECT_EQ(r.processes[0].references, program_->trace().reference_count());
  EXPECT_GT(r.processes[0].faults, 0u);
  EXPECT_EQ(r.processes[0].finished_at, r.total_time);
}

TEST_F(OsTest, AllProcessesComplete) {
  OsOptions options;
  options.total_frames = 48;
  OsRunResult r = RunMultiprogrammedCd({Spec("P0", 0), Spec("P1", 1), Spec("P2", 2)}, options).value();
  ASSERT_EQ(r.processes.size(), 3u);
  for (const OsProcessStats& p : r.processes) {
    EXPECT_EQ(p.references, program_->trace().reference_count()) << p.name;
    EXPECT_GT(p.finished_at, 0u) << p.name;
  }
}

TEST_F(OsTest, PoolNeverOvercommitted) {
  // mean_pool_used is a time-weighted average of reserved frames, which the
  // Reserve() CHECK keeps <= total at every instant; the average must too.
  OsOptions options;
  options.total_frames = 24;
  OsRunResult r = RunMultiprogrammedCd({Spec("A", 0), Spec("B", 1)}, options).value();
  EXPECT_LE(r.mean_pool_used, 24.0 + 1e-9);
}

TEST_F(OsTest, FaultServiceOverlapsExecution) {
  // With two processes, one can run while the other page-waits, so the
  // makespan is less than the sum of the isolated elapsed times.
  OsOptions options;
  options.total_frames = 48;
  OsRunResult solo = RunMultiprogrammedCd({Spec("S", 0)}, options).value();
  OsRunResult duo = RunMultiprogrammedCd({Spec("A", 0), Spec("B", 1)}, options).value();
  EXPECT_LT(duo.total_time, 2 * solo.total_time);
  EXPECT_GT(duo.cpu_utilisation, solo.cpu_utilisation);
}

TEST_F(OsTest, WorkingSetModeCompletesAndTracksWs) {
  OsOptions options;
  options.total_frames = 40;
  OsRunResult r = RunMultiprogrammedWs({Spec("A", 0), Spec("B", 1)}, options, /*tau=*/1000).value();
  ASSERT_EQ(r.processes.size(), 2u);
  for (const OsProcessStats& p : r.processes) {
    EXPECT_EQ(p.references, program_->trace().reference_count()) << p.name;
    EXPECT_GT(p.faults, 0u);
    EXPECT_GT(p.mean_held, 0.0);
  }
  EXPECT_LE(r.mean_pool_used, 40.0 + 1e-9);
}

TEST_F(OsTest, WorkingSetModeLoadControlUnderPressure) {
  // With a pool far below the two working sets, the WS load control must
  // suspend or swap at least once, and both processes still finish.
  OsOptions options;
  options.total_frames = 10;
  OsRunResult r = RunMultiprogrammedWs({Spec("A", 0), Spec("B", 1)}, options, /*tau=*/5000).value();
  uint64_t churn = r.swaps;
  for (const OsProcessStats& p : r.processes) {
    churn += p.suspensions;
    EXPECT_EQ(p.references, program_->trace().reference_count()) << p.name;
  }
  EXPECT_GT(churn, 0u);
}

TEST_F(OsTest, CdBeatsWsLoadControlOnDirectedMix) {
  OsOptions options;
  options.total_frames = 32;
  std::vector<OsProcessSpec> specs = {Spec("A", 0), Spec("B", 1)};
  OsRunResult cd = RunMultiprogrammedCd(specs, options).value();
  OsRunResult ws = RunMultiprogrammedWs(specs, options, /*tau=*/2000).value();
  // CD has per-request information; WS must infer. CD should not fault
  // meaningfully more.
  EXPECT_LE(cd.total_faults, ws.total_faults * 12 / 10);
}

TEST_F(OsTest, EqualPartitionBaselineUsesFixedShares) {
  OsOptions options;
  options.total_frames = 40;
  OsRunResult r = RunEqualPartitionLru({Spec("A", 0), Spec("B", 1)}, options).value();
  for (const OsProcessStats& p : r.processes) {
    EXPECT_NEAR(p.mean_held, 20.0, 0.5) << p.name;
  }
}

TEST_F(OsTest, CdBeatsEqualPartitionOnPhaseContrast) {
  // The directive-driven manager gives each process what its phase needs;
  // the static split cannot. With enough contention CD must not fault more.
  OsOptions options;
  options.total_frames = 32;
  std::vector<OsProcessSpec> specs = {Spec("A", 0), Spec("B", 1)};
  OsRunResult cd = RunMultiprogrammedCd(specs, options).value();
  OsRunResult eq = RunEqualPartitionLru(specs, options).value();
  EXPECT_LE(cd.total_faults, eq.total_faults * 11 / 10);
}

TEST_F(OsTest, QuantumControlsInterleavingDeterministically) {
  OsOptions a;
  a.total_frames = 48;
  a.quantum = 1000;
  OsOptions b = a;
  b.quantum = 50000;
  OsRunResult ra = RunMultiprogrammedCd({Spec("A", 0), Spec("B", 1)}, a).value();
  OsRunResult rb = RunMultiprogrammedCd({Spec("A", 0), Spec("B", 1)}, b).value();
  // Same work completes under both quanta.
  EXPECT_EQ(ra.processes[0].references, rb.processes[0].references);
  EXPECT_EQ(ra.total_faults + rb.total_faults, 2 * ra.total_faults);  // determinism
}

TEST_F(OsTest, RunsAreDeterministic) {
  OsOptions options;
  options.total_frames = 32;
  std::vector<OsProcessSpec> specs = {Spec("A", 0), Spec("B", 1)};
  OsRunResult r1 = RunMultiprogrammedCd(specs, options).value();
  OsRunResult r2 = RunMultiprogrammedCd(specs, options).value();
  EXPECT_EQ(r1.total_time, r2.total_time);
  EXPECT_EQ(r1.total_faults, r2.total_faults);
  EXPECT_EQ(r1.processes[0].faults, r2.processes[0].faults);
}

// Hand-built traces exercising the Figure-6 swap/suspend arms directly:
// a greedy process grabs most of the pool with a PI=1 demand, then a second
// process issues its own large PI=1 request.
Trace GreedyTrace(uint32_t demand, int work) {
  Trace t("greedy");
  t.set_virtual_pages(demand + 1);
  DirectiveRecord d;
  d.kind = DirectiveRecord::Kind::kAllocate;
  d.requests = {AllocateRequest{1, demand}};
  t.AddDirective(d);
  for (int i = 0; i < work; ++i) {
    for (PageId p = 0; p < demand; ++p) {
      t.AddRef(p);
    }
  }
  return t;
}

TEST(OsSwapTest, EqualPriorityRequesterSuspendsUntilMemoryFrees) {
  Trace a = GreedyTrace(40, 30);
  Trace b = GreedyTrace(30, 5);
  OsOptions options;
  options.total_frames = 48;
  options.quantum = 500;
  // Same priority: B cannot swap A, so B suspends at its ALLOCATE until A
  // terminates and releases its frames.
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"A", &a, 0},
      OsProcessSpec{"B", &b, 0},
  };
  OsRunResult r = RunMultiprogrammedCd(specs, options).value();
  EXPECT_EQ(r.swaps, 0u);
  EXPECT_GE(r.processes[1].suspensions, 1u);
  EXPECT_EQ(r.processes[1].references, b.reference_count());
  // B finishes after A: it had to wait for the frames.
  EXPECT_GT(r.processes[1].finished_at, r.processes[0].finished_at);
}

TEST(OsSwapTest, HigherPriorityRequesterSwapsLowerJob) {
  Trace a = GreedyTrace(40, 30);
  Trace b = GreedyTrace(30, 5);
  OsOptions options;
  options.total_frames = 48;
  options.quantum = 500;
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"A", &a, /*job_priority=*/0},
      OsProcessSpec{"B", &b, /*job_priority=*/9},
  };
  OsRunResult r = RunMultiprogrammedCd(specs, options).value();
  EXPECT_GE(r.swaps, 1u);
  EXPECT_GE(r.processes[0].swapped_out, 1u);
  // Both still complete.
  EXPECT_EQ(r.processes[0].references, a.reference_count());
  EXPECT_EQ(r.processes[1].references, b.reference_count());
}

// ---- Robustness: structured errors, fault injection, load control.

TEST(OsRobustTest, UnfittableWorkloadReturnsErrorInsteadOfAborting) {
  Trace t = GreedyTrace(4, 1);
  OsOptions options;
  options.total_frames = 4;
  options.initial_allocation = 2;
  // 3 processes x 2 initial frames > 4 total: can never fit.
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"A", &t, 0}, OsProcessSpec{"B", &t, 0}, OsProcessSpec{"C", &t, 0}};
  Result<OsRunResult> r = RunMultiprogrammedCd(specs, options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("can never fit"), std::string::npos);
}

TEST(OsRobustTest, EmptyAndNullSpecsReturnErrors) {
  OsOptions options;
  EXPECT_FALSE(RunMultiprogrammedCd({}, options).ok());
  std::vector<OsProcessSpec> null_trace = {OsProcessSpec{"A", nullptr, 0}};
  EXPECT_FALSE(RunMultiprogrammedCd(null_trace, options).ok());
  EXPECT_FALSE(RunMultiprogrammedWs(null_trace, options, 1000).ok());
}

TEST(OsRobustTest, EqualPartitionNeedsOneFramePerProcess) {
  Trace t = GreedyTrace(2, 1);
  OsOptions options;
  options.total_frames = 2;
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"A", &t, 0}, OsProcessSpec{"B", &t, 0}, OsProcessSpec{"C", &t, 0}};
  Result<OsRunResult> r = RunEqualPartitionLru(specs, options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("can never fit"), std::string::npos);
}

TEST(OsRobustTest, FailUnfittableMarksProcessFailedAndRestFinish) {
  Trace big = GreedyTrace(100, 3);   // PI=1 demand of 100 pages
  Trace small = GreedyTrace(10, 3);
  OsOptions options;
  options.total_frames = 48;
  options.fail_unfittable = true;
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"BIG", &big, 0}, OsProcessSpec{"SMALL", &small, 0}};
  OsRunResult r = RunMultiprogrammedCd(specs, options).value();
  EXPECT_EQ(r.failed_processes, 1u);
  EXPECT_FALSE(r.processes[0].completed);
  EXPECT_NE(r.processes[0].failure.find("can never fit"), std::string::npos);
  EXPECT_TRUE(r.processes[1].completed);
  EXPECT_EQ(r.processes[1].references, small.reference_count());
}

TEST(OsRobustTest, DefaultClampKeepsUnfittableProcessRunning) {
  Trace big = GreedyTrace(100, 3);
  OsOptions options;
  options.total_frames = 48;
  OsRunResult r =
      RunMultiprogrammedCd({OsProcessSpec{"BIG", &big, 0}}, options).value();
  EXPECT_EQ(r.failed_processes, 0u);
  EXPECT_TRUE(r.processes[0].completed);
  EXPECT_EQ(r.processes[0].references, big.reference_count());
}

TEST(OsRobustTest, UnfittableWorkloadStillErrorsUnderAHierarchy) {
  // The structured-error path must not regress when the run goes through the
  // N-level engine instead of the flat backing store.
  Trace t = GreedyTrace(4, 1);
  HierarchySpec spec = HierarchySpec::Parse("nvm:16:60,disk:*:2000").value();
  OsOptions options;
  options.total_frames = 4;
  options.initial_allocation = 2;
  options.hierarchy = &spec;
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"A", &t, 0}, OsProcessSpec{"B", &t, 0}, OsProcessSpec{"C", &t, 0}};
  Result<OsRunResult> r = RunMultiprogrammedCd(specs, options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("can never fit"), std::string::npos);

  // Null traces and empty mixes error identically with a hierarchy attached.
  EXPECT_FALSE(RunMultiprogrammedCd({}, options).ok());
  std::vector<OsProcessSpec> null_trace = {OsProcessSpec{"A", nullptr, 0}};
  EXPECT_FALSE(RunMultiprogrammedCd(null_trace, options).ok());
  EXPECT_FALSE(RunMultiprogrammedWs(null_trace, options, 1000).ok());
}

TEST(OsRobustTest, FailUnfittableDegradesGracefullyUnderAHierarchy) {
  Trace big = GreedyTrace(100, 3);  // PI=1 demand of 100 pages: never fits 48
  Trace small = GreedyTrace(10, 3);
  HierarchySpec spec =
      HierarchySpec::Parse("nvm:24:60,ssd:32:400,disk:*:2000").value();
  OsOptions options;
  options.total_frames = 48;
  options.fail_unfittable = true;
  options.hierarchy = &spec;
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"BIG", &big, 0}, OsProcessSpec{"SMALL", &small, 0}};
  OsRunResult r = RunMultiprogrammedCd(specs, options).value();
  EXPECT_EQ(r.failed_processes, 1u);
  EXPECT_FALSE(r.processes[0].completed);
  EXPECT_NE(r.processes[0].failure.find("can never fit"), std::string::npos);
  EXPECT_TRUE(r.processes[1].completed);
  EXPECT_EQ(r.processes[1].references, small.reference_count());
  // The shared hierarchy still reports per-level traffic for the survivor,
  // and every serviced fault is accounted to exactly one level.
  ASSERT_EQ(r.hierarchy_levels.size(), 3u);
  uint64_t serviced = 0;
  for (const HierarchyLevelTraffic& level : r.hierarchy_levels) {
    serviced += level.hits;
  }
  EXPECT_EQ(serviced, r.total_faults);
}

class OsInjectionTest : public OsTest {};

TEST_F(OsInjectionTest, SameSeedSameSchedule) {
  FaultInjector injector(FaultInjectionConfig::AtIntensity(/*seed=*/42, 0.6));
  OsOptions options;
  options.total_frames = 32;
  options.injector = &injector;
  std::vector<OsProcessSpec> specs = {Spec("A", 0), Spec("B", 1)};
  OsRunResult r1 = RunMultiprogrammedCd(specs, options).value();
  OsRunResult r2 = RunMultiprogrammedCd(specs, options).value();
  EXPECT_EQ(r1.total_time, r2.total_time);
  EXPECT_EQ(r1.total_faults, r2.total_faults);
  EXPECT_EQ(r1.swap_device_failures, r2.swap_device_failures);
  EXPECT_EQ(r1.phantom_peak_frames, r2.phantom_peak_frames);
  for (size_t i = 0; i < r1.processes.size(); ++i) {
    EXPECT_EQ(r1.processes[i].faults, r2.processes[i].faults);
    EXPECT_EQ(r1.processes[i].finished_at, r2.processes[i].finished_at);
  }
}

TEST_F(OsInjectionTest, DisabledInjectorMatchesNullInjector) {
  FaultInjector disabled;  // seed 0
  OsOptions with;
  with.total_frames = 32;
  with.injector = &disabled;
  OsOptions without;
  without.total_frames = 32;
  std::vector<OsProcessSpec> specs = {Spec("A", 0), Spec("B", 1)};
  OsRunResult a = RunMultiprogrammedCd(specs, with).value();
  OsRunResult b = RunMultiprogrammedCd(specs, without).value();
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_faults, b.total_faults);
  EXPECT_EQ(a.mean_pool_used, b.mean_pool_used);
}

TEST_F(OsInjectionTest, InjectedRunStillCompletesEveryProcess) {
  FaultInjector injector(FaultInjectionConfig::AtIntensity(/*seed=*/7, 1.0));
  OsOptions options;
  options.total_frames = 32;
  options.injector = &injector;
  options.load_control = true;
  std::vector<OsProcessSpec> specs = {Spec("A", 0), Spec("B", 1), Spec("C", 2)};
  OsRunResult r = RunMultiprogrammedCd(specs, options).value();
  for (const OsProcessStats& p : r.processes) {
    EXPECT_EQ(p.references, program_->trace().reference_count()) << p.name;
    EXPECT_TRUE(p.completed) << p.name;
  }
  // Full intensity must actually perturb the run.
  EXPECT_GT(r.phantom_peak_frames + r.swap_device_failures + r.total_faults, 0u);
}

TEST_F(OsInjectionTest, SwapDeviceFailuresAreCountedAndBounded) {
  FaultInjectionConfig config;
  config.seed = 11;
  config.swap_failure_rate = 1.0;  // the device is down for good
  config.max_swap_retries = 2;
  FaultInjector injector(config);
  Trace a = GreedyTrace(40, 30);
  Trace b = GreedyTrace(30, 5);
  OsOptions options;
  options.total_frames = 48;
  options.quantum = 500;
  options.injector = &injector;
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"A", &a, 0}, OsProcessSpec{"B", &b, 9}};
  OsRunResult r = RunMultiprogrammedCd(specs, options).value();
  // Every swap attempt fails: no swaps happen, retries are exhausted, and
  // both processes still complete (B waits for A's frames instead).
  EXPECT_EQ(r.swaps, 0u);
  EXPECT_GT(r.swap_retries_exhausted, 0u);
  EXPECT_EQ(r.swap_device_failures, r.swap_retries_exhausted * 3);
  EXPECT_EQ(r.processes[0].references, a.reference_count());
  EXPECT_EQ(r.processes[1].references, b.reference_count());
}

TEST_F(OsInjectionTest, LoadControlEngagesUnderThrashing) {
  OsOptions options;
  options.total_frames = 12;  // far below the mix's aggregate demand
  options.fault_service_time = 20000;
  options.load_control = true;
  options.thrash_window = 512;
  options.thrash_cpu_low = 0.95;  // aggressive: almost any waiting trips it
  options.thrash_fault_rate = 0.0001;
  std::vector<OsProcessSpec> specs = {Spec("A", 0), Spec("B", 1), Spec("C", 2)};
  OsRunResult r = RunMultiprogrammedWs(specs, options, /*tau=*/4000).value();
  EXPECT_GT(r.load_control_suspensions, 0u);
  for (const OsProcessStats& p : r.processes) {
    EXPECT_EQ(p.references, program_->trace().reference_count()) << p.name;
  }
}

TEST(OsWorkloadTest, HigherPriorityJobCanSwapLowerOne) {
  auto a = CompiledProgram::FromSource(FindWorkload("HWSCRT").source);
  auto b = CompiledProgram::FromSource(FindWorkload("APPROX").source);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  CompiledProgram pa = std::move(a).value();
  CompiledProgram pb = std::move(b).value();
  OsOptions options;
  options.total_frames = 72;
  // HWSCRT (priority 5) demands ~66 frames at PI=1-adjacent levels while
  // APPROX (priority 0) holds memory: the swapper should act at least once.
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"HWSCRT", &pa.trace(), 5},
      OsProcessSpec{"APPROX", &pb.trace(), 0},
  };
  OsRunResult r = RunMultiprogrammedCd(specs, options).value();
  EXPECT_EQ(r.processes.size(), 2u);
  // Both still finish.
  EXPECT_GT(r.processes[0].references, 0u);
  EXPECT_GT(r.processes[1].references, 0u);
}

}  // namespace
}  // namespace cdmm
