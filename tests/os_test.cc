#include "src/os/multiprog.h"

#include <gtest/gtest.h>

#include "src/cdmm/pipeline.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

// Small synthetic workload with a clear two-phase structure so the OS tests
// stay fast.
constexpr char kSmall[] = R"(
      PROGRAM SMALL
      PARAMETER (N = 256)
      DIMENSION A(N), B(N)
      DO 30 T = 1, 6
        DO 10 I = 1, N
          A(I) = A(I) + 1.0
   10   CONTINUE
        DO 20 I = 1, N
          B(I) = B(I) + A(I)
   20   CONTINUE
   30 CONTINUE
      END
)";

class OsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cp = CompiledProgram::FromSource(kSmall);
    ASSERT_TRUE(cp.ok()) << cp.error().ToString();
    program_ = std::make_unique<CompiledProgram>(std::move(cp).value());
  }

  OsProcessSpec Spec(const std::string& name, int priority) {
    return OsProcessSpec{name, &program_->trace(), priority};
  }

  std::unique_ptr<CompiledProgram> program_;
};

TEST_F(OsTest, SingleProcessCompletes) {
  OsOptions options;
  options.total_frames = 32;
  OsRunResult r = RunMultiprogrammedCd({Spec("P0", 0)}, options);
  ASSERT_EQ(r.processes.size(), 1u);
  EXPECT_EQ(r.processes[0].references, program_->trace().reference_count());
  EXPECT_GT(r.processes[0].faults, 0u);
  EXPECT_EQ(r.processes[0].finished_at, r.total_time);
}

TEST_F(OsTest, AllProcessesComplete) {
  OsOptions options;
  options.total_frames = 48;
  OsRunResult r = RunMultiprogrammedCd({Spec("P0", 0), Spec("P1", 1), Spec("P2", 2)}, options);
  ASSERT_EQ(r.processes.size(), 3u);
  for (const OsProcessStats& p : r.processes) {
    EXPECT_EQ(p.references, program_->trace().reference_count()) << p.name;
    EXPECT_GT(p.finished_at, 0u) << p.name;
  }
}

TEST_F(OsTest, PoolNeverOvercommitted) {
  // mean_pool_used is a time-weighted average of reserved frames, which the
  // Reserve() CHECK keeps <= total at every instant; the average must too.
  OsOptions options;
  options.total_frames = 24;
  OsRunResult r = RunMultiprogrammedCd({Spec("A", 0), Spec("B", 1)}, options);
  EXPECT_LE(r.mean_pool_used, 24.0 + 1e-9);
}

TEST_F(OsTest, FaultServiceOverlapsExecution) {
  // With two processes, one can run while the other page-waits, so the
  // makespan is less than the sum of the isolated elapsed times.
  OsOptions options;
  options.total_frames = 48;
  OsRunResult solo = RunMultiprogrammedCd({Spec("S", 0)}, options);
  OsRunResult duo = RunMultiprogrammedCd({Spec("A", 0), Spec("B", 1)}, options);
  EXPECT_LT(duo.total_time, 2 * solo.total_time);
  EXPECT_GT(duo.cpu_utilisation, solo.cpu_utilisation);
}

TEST_F(OsTest, WorkingSetModeCompletesAndTracksWs) {
  OsOptions options;
  options.total_frames = 40;
  OsRunResult r = RunMultiprogrammedWs({Spec("A", 0), Spec("B", 1)}, options, /*tau=*/1000);
  ASSERT_EQ(r.processes.size(), 2u);
  for (const OsProcessStats& p : r.processes) {
    EXPECT_EQ(p.references, program_->trace().reference_count()) << p.name;
    EXPECT_GT(p.faults, 0u);
    EXPECT_GT(p.mean_held, 0.0);
  }
  EXPECT_LE(r.mean_pool_used, 40.0 + 1e-9);
}

TEST_F(OsTest, WorkingSetModeLoadControlUnderPressure) {
  // With a pool far below the two working sets, the WS load control must
  // suspend or swap at least once, and both processes still finish.
  OsOptions options;
  options.total_frames = 10;
  OsRunResult r = RunMultiprogrammedWs({Spec("A", 0), Spec("B", 1)}, options, /*tau=*/5000);
  uint64_t churn = r.swaps;
  for (const OsProcessStats& p : r.processes) {
    churn += p.suspensions;
    EXPECT_EQ(p.references, program_->trace().reference_count()) << p.name;
  }
  EXPECT_GT(churn, 0u);
}

TEST_F(OsTest, CdBeatsWsLoadControlOnDirectedMix) {
  OsOptions options;
  options.total_frames = 32;
  std::vector<OsProcessSpec> specs = {Spec("A", 0), Spec("B", 1)};
  OsRunResult cd = RunMultiprogrammedCd(specs, options);
  OsRunResult ws = RunMultiprogrammedWs(specs, options, /*tau=*/2000);
  // CD has per-request information; WS must infer. CD should not fault
  // meaningfully more.
  EXPECT_LE(cd.total_faults, ws.total_faults * 12 / 10);
}

TEST_F(OsTest, EqualPartitionBaselineUsesFixedShares) {
  OsOptions options;
  options.total_frames = 40;
  OsRunResult r = RunEqualPartitionLru({Spec("A", 0), Spec("B", 1)}, options);
  for (const OsProcessStats& p : r.processes) {
    EXPECT_NEAR(p.mean_held, 20.0, 0.5) << p.name;
  }
}

TEST_F(OsTest, CdBeatsEqualPartitionOnPhaseContrast) {
  // The directive-driven manager gives each process what its phase needs;
  // the static split cannot. With enough contention CD must not fault more.
  OsOptions options;
  options.total_frames = 32;
  std::vector<OsProcessSpec> specs = {Spec("A", 0), Spec("B", 1)};
  OsRunResult cd = RunMultiprogrammedCd(specs, options);
  OsRunResult eq = RunEqualPartitionLru(specs, options);
  EXPECT_LE(cd.total_faults, eq.total_faults * 11 / 10);
}

TEST_F(OsTest, QuantumControlsInterleavingDeterministically) {
  OsOptions a;
  a.total_frames = 48;
  a.quantum = 1000;
  OsOptions b = a;
  b.quantum = 50000;
  OsRunResult ra = RunMultiprogrammedCd({Spec("A", 0), Spec("B", 1)}, a);
  OsRunResult rb = RunMultiprogrammedCd({Spec("A", 0), Spec("B", 1)}, b);
  // Same work completes under both quanta.
  EXPECT_EQ(ra.processes[0].references, rb.processes[0].references);
  EXPECT_EQ(ra.total_faults + rb.total_faults, 2 * ra.total_faults);  // determinism
}

TEST_F(OsTest, RunsAreDeterministic) {
  OsOptions options;
  options.total_frames = 32;
  std::vector<OsProcessSpec> specs = {Spec("A", 0), Spec("B", 1)};
  OsRunResult r1 = RunMultiprogrammedCd(specs, options);
  OsRunResult r2 = RunMultiprogrammedCd(specs, options);
  EXPECT_EQ(r1.total_time, r2.total_time);
  EXPECT_EQ(r1.total_faults, r2.total_faults);
  EXPECT_EQ(r1.processes[0].faults, r2.processes[0].faults);
}

// Hand-built traces exercising the Figure-6 swap/suspend arms directly:
// a greedy process grabs most of the pool with a PI=1 demand, then a second
// process issues its own large PI=1 request.
Trace GreedyTrace(uint32_t demand, int work) {
  Trace t("greedy");
  t.set_virtual_pages(demand + 1);
  DirectiveRecord d;
  d.kind = DirectiveRecord::Kind::kAllocate;
  d.requests = {AllocateRequest{1, demand}};
  t.AddDirective(d);
  for (int i = 0; i < work; ++i) {
    for (PageId p = 0; p < demand; ++p) {
      t.AddRef(p);
    }
  }
  return t;
}

TEST(OsSwapTest, EqualPriorityRequesterSuspendsUntilMemoryFrees) {
  Trace a = GreedyTrace(40, 30);
  Trace b = GreedyTrace(30, 5);
  OsOptions options;
  options.total_frames = 48;
  options.quantum = 500;
  // Same priority: B cannot swap A, so B suspends at its ALLOCATE until A
  // terminates and releases its frames.
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"A", &a, 0},
      OsProcessSpec{"B", &b, 0},
  };
  OsRunResult r = RunMultiprogrammedCd(specs, options);
  EXPECT_EQ(r.swaps, 0u);
  EXPECT_GE(r.processes[1].suspensions, 1u);
  EXPECT_EQ(r.processes[1].references, b.reference_count());
  // B finishes after A: it had to wait for the frames.
  EXPECT_GT(r.processes[1].finished_at, r.processes[0].finished_at);
}

TEST(OsSwapTest, HigherPriorityRequesterSwapsLowerJob) {
  Trace a = GreedyTrace(40, 30);
  Trace b = GreedyTrace(30, 5);
  OsOptions options;
  options.total_frames = 48;
  options.quantum = 500;
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"A", &a, /*job_priority=*/0},
      OsProcessSpec{"B", &b, /*job_priority=*/9},
  };
  OsRunResult r = RunMultiprogrammedCd(specs, options);
  EXPECT_GE(r.swaps, 1u);
  EXPECT_GE(r.processes[0].swapped_out, 1u);
  // Both still complete.
  EXPECT_EQ(r.processes[0].references, a.reference_count());
  EXPECT_EQ(r.processes[1].references, b.reference_count());
}

TEST(OsWorkloadTest, HigherPriorityJobCanSwapLowerOne) {
  auto a = CompiledProgram::FromSource(FindWorkload("HWSCRT").source);
  auto b = CompiledProgram::FromSource(FindWorkload("APPROX").source);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  CompiledProgram pa = std::move(a).value();
  CompiledProgram pb = std::move(b).value();
  OsOptions options;
  options.total_frames = 72;
  // HWSCRT (priority 5) demands ~66 frames at PI=1-adjacent levels while
  // APPROX (priority 0) holds memory: the swapper should act at least once.
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"HWSCRT", &pa.trace(), 5},
      OsProcessSpec{"APPROX", &pb.trace(), 0},
  };
  OsRunResult r = RunMultiprogrammedCd(specs, options);
  EXPECT_EQ(r.processes.size(), 2u);
  // Both still finish.
  EXPECT_GT(r.processes[0].references, 0u);
  EXPECT_GT(r.processes[1].references, 0u);
}

}  // namespace
}  // namespace cdmm
