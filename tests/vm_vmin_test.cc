#include "src/vm/vmin.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/pff.h"
#include "src/vm/working_set.h"

namespace cdmm {
namespace {

Trace MakeTrace(const std::vector<PageId>& pages) {
  Trace t("test");
  uint32_t v = 0;
  for (PageId p : pages) {
    v = std::max(v, p + 1);
  }
  t.set_virtual_pages(v);
  for (PageId p : pages) {
    t.AddRef(p);
  }
  return t;
}

TEST(VminTest, KeepsPageWhenGapWithinWindow) {
  // Gap of 3 <= window 10: page 0 stays resident, no second fault.
  Trace t = MakeTrace({0, 1, 2, 0});
  SimOptions options;
  options.fault_service_time = 10;
  SimResult r = SimulateVmin(t, options);
  EXPECT_EQ(r.faults, 3u);
}

TEST(VminTest, DropsPageWhenGapExceedsWindow) {
  // Gap of 3 > window 2: page 0 is dropped and refaults; that is optimal
  // because 3 time units of holding cost more than one 2-unit fault.
  Trace t = MakeTrace({0, 1, 2, 0});
  SimOptions options;
  options.fault_service_time = 2;
  SimResult r = SimulateVmin(t, options);
  EXPECT_EQ(r.faults, 4u);
  // Resident only at the use instants: mean memory 1 page.
  EXPECT_LE(r.mean_memory, 1.0 + 1e-9);
}

TEST(VminTest, ExplicitRetentionOverride) {
  Trace t = MakeTrace({0, 1, 2, 0});
  SimOptions options;
  options.fault_service_time = 2;
  SimResult r = SimulateVmin(t, options, /*retention=*/100);
  EXPECT_EQ(r.faults, 3u);  // retention window widened
}

TEST(VminTest, SingleHotPage) {
  std::vector<PageId> seq(100, 0);
  Trace t = MakeTrace(seq);
  SimResult r = SimulateVmin(t);
  EXPECT_EQ(r.faults, 1u);
  EXPECT_DOUBLE_EQ(r.mean_memory, 1.0);
}

TEST(VminTest, EmptyTrace) {
  Trace t("empty");
  SimResult r = SimulateVmin(t);
  EXPECT_EQ(r.faults, 0u);
  EXPECT_DOUBLE_EQ(r.space_time, 0.0);
}

TEST(VminTest, StFormulaHolds) {
  SplitMix64 rng(3);
  std::vector<PageId> seq;
  for (int i = 0; i < 2000; ++i) {
    seq.push_back(static_cast<PageId>(rng.NextBelow(16)));
  }
  Trace t = MakeTrace(seq);
  SimResult r = SimulateVmin(t);
  EXPECT_NEAR(r.space_time,
              r.mean_memory * static_cast<double>(r.references) +
                  static_cast<double>(r.faults) * 2000.0,
              1e-6 * r.space_time);
}

class VminOptimalityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(VminOptimalityTest, VminStIsALowerBound) {
  // VMIN minimises ST over all demand policies; every implemented policy
  // (whose MEM accounting never understates residency) must cost at least
  // as much.
  SplitMix64 rng(GetParam());
  std::vector<PageId> seq;
  for (int i = 0; i < 6000; ++i) {
    seq.push_back(rng.NextDouble() < 0.6 ? static_cast<PageId>(rng.NextBelow(6))
                                         : static_cast<PageId>(rng.NextBelow(48)));
  }
  Trace t = MakeTrace(seq);
  double vmin = SimulateVmin(t).space_time;
  for (uint32_t m : {2u, 6u, 12u, 24u, 48u}) {
    EXPECT_LE(vmin, SimulateFixed(t, m, Replacement::kLru).space_time * (1 + 1e-9)) << "m=" << m;
    EXPECT_LE(vmin, SimulateFixed(t, m, Replacement::kOpt).space_time * (1 + 1e-9)) << "m=" << m;
  }
  for (uint64_t tau : {10u, 100u, 1000u, 10000u}) {
    EXPECT_LE(vmin, SimulateWs(t, tau).space_time * (1 + 1e-9)) << "tau=" << tau;
  }
  EXPECT_LE(vmin, SimulatePff(t, 2000).space_time * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VminOptimalityTest, ::testing::Values(1u, 7u, 21u, 77u));

TEST(VminTest, FaultsNonIncreasingInRetention) {
  SplitMix64 rng(5);
  std::vector<PageId> seq;
  for (int i = 0; i < 3000; ++i) {
    seq.push_back(static_cast<PageId>(rng.NextBelow(20)));
  }
  Trace t = MakeTrace(seq);
  uint64_t prev = ~0ull;
  for (uint64_t u : {1u, 10u, 100u, 1000u, 10000u}) {
    uint64_t f = SimulateVmin(t, {}, u).faults;
    EXPECT_LE(f, prev);
    prev = f;
  }
}

}  // namespace
}  // namespace cdmm
