#include "src/cdmm/experiments.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cdmm {
namespace {

// One runner for the whole file: the sweeps are cached and shared.
ExperimentRunner& Runner() {
  static auto* runner = new ExperimentRunner();
  return *runner;
}

TEST(ExperimentRunnerTest, CompiledWorkloadsAreCached) {
  const CompiledProgram& a = Runner().compiled("HWSCRT");
  const CompiledProgram& b = Runner().compiled("HWSCRT");
  EXPECT_EQ(&a, &b);
}

TEST(ExperimentRunnerTest, CdResultsAreCachedByVariant) {
  const WorkloadVariant& v = FindVariant("HWSCRT");
  const SimResult& a = Runner().RunCd(v);
  const SimResult& b = Runner().RunCd(v);
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.faults, 0u);
}

TEST(ExperimentRunnerTest, LruCurveCoversWholeVirtualSpace) {
  const auto& curve = Runner().LruCurve("HWSCRT");
  EXPECT_EQ(curve.size(), Runner().compiled("HWSCRT").virtual_pages());
  // Non-increasing faults; the last point has cold faults only.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].faults, curve[i - 1].faults);
  }
  TraceStats stats = Runner().compiled("HWSCRT").trace().ComputeStats();
  EXPECT_EQ(curve.back().faults, stats.distinct_pages);
}

TEST(ExperimentRunnerTest, WsCurveEndsAtFullRetention) {
  const auto& curve = Runner().WsCurve("HWSCRT");
  ASSERT_FALSE(curve.empty());
  TraceStats stats = Runner().compiled("HWSCRT").trace().ComputeStats();
  EXPECT_EQ(curve.back().faults, stats.distinct_pages);
}

TEST(ExperimentRunnerTest, MinStRowIsConsistent) {
  auto row = Runner().MinStComparison(FindVariant("HWSCRT"));
  EXPECT_GT(row.st_cd, 0.0);
  EXPECT_GT(row.st_lru, 0.0);
  EXPECT_GT(row.st_ws, 0.0);
  // The reported minima really are minima of the cached curves.
  for (const SweepPoint& p : Runner().LruCurve("HWSCRT")) {
    EXPECT_GE(p.space_time, row.st_lru - 1e-6);
  }
  for (const SweepPoint& p : Runner().WsCurve("HWSCRT")) {
    EXPECT_GE(p.space_time, row.st_ws - 1e-6);
  }
}

TEST(ExperimentRunnerTest, EqualMemoryRowMatchesCdOperatingPoint) {
  auto row = Runner().EqualMemoryComparison(FindVariant("HWSCRT"));
  const SimResult& cd = Runner().RunCd(FindVariant("HWSCRT"));
  EXPECT_DOUBLE_EQ(row.mem_cd, cd.mean_memory);
  EXPECT_EQ(row.pf_cd, cd.faults);
  EXPECT_EQ(row.lru_frames, static_cast<uint32_t>(std::lround(cd.mean_memory)));
  // The chosen WS point's memory is within the grid's resolution of CD's.
  EXPECT_NEAR(row.ws_mem, row.mem_cd, row.mem_cd * 0.5 + 2.0);
}

TEST(ExperimentRunnerTest, EqualFaultRowMeetsTheTarget) {
  auto row = Runner().EqualFaultComparison(FindVariant("HWSCRT"));
  // The selected LRU partition really generates at most PF_CD faults.
  const auto& lru = Runner().LruCurve("HWSCRT");
  EXPECT_LE(lru[row.lru_frames - 1].faults, row.pf_cd);
  // And it is the smallest such partition.
  if (row.lru_frames > 1) {
    EXPECT_GT(lru[row.lru_frames - 2].faults, row.pf_cd);
  }
  // The WS pick also meets the fault target.
  bool found = false;
  for (const SweepPoint& p : Runner().WsCurve("HWSCRT")) {
    if (static_cast<uint64_t>(p.parameter) == row.ws_tau) {
      EXPECT_LE(p.faults, row.pf_cd);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExperimentShapeTest, Table1MemoryOrdering) {
  // Paper shape: outer directive sets hold more memory, inner ones fault
  // more (Table 1's headline observation).
  double mem_outer = Runner().RunCd(FindVariant("MAIN1")).mean_memory;
  double mem_mid = Runner().RunCd(FindVariant("MAIN2")).mean_memory;
  double mem_inner = Runner().RunCd(FindVariant("MAIN3")).mean_memory;
  EXPECT_GT(mem_outer, mem_mid);
  EXPECT_GT(mem_mid, mem_inner);
  uint64_t pf_outer = Runner().RunCd(FindVariant("MAIN1")).faults;
  uint64_t pf_inner = Runner().RunCd(FindVariant("MAIN3")).faults;
  EXPECT_LT(pf_outer, pf_inner);
}

TEST(ExperimentShapeTest, ConductBeatsFixedPoliciesAtEqualMemory) {
  // The paper's drastic CONDUCT row: at CD's memory, LRU produces thousands
  // more faults (3477 in the paper).
  auto row = Runner().EqualMemoryComparison(FindVariant("CONDUCT"));
  EXPECT_GT(row.dpf_lru, 1000);
  EXPECT_GT(row.pct_st_lru, 50.0);
}

TEST(ExperimentShapeTest, HwscrtLruNeedsFarMoreMemoryForEqualFaults) {
  // Paper Table 4: LRU needs 442% more memory than CD for HWSCRT; our shape
  // target is a substantial positive excess.
  auto row = Runner().EqualFaultComparison(FindVariant("HWSCRT"));
  EXPECT_GT(row.pct_mem_lru, 50.0);
}

}  // namespace
}  // namespace cdmm
