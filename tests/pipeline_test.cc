#include "src/cdmm/pipeline.h"

#include <gtest/gtest.h>

namespace cdmm {
namespace {

constexpr char kTiny[] = R"(
      PROGRAM TINY
      PARAMETER (N = 64)
      DIMENSION A(N,2), V(N)
      DO 20 J = 1, 2
        V(J) = 0.0
        DO 10 I = 1, N
          A(I,J) = V(I) + 1.0
   10   CONTINUE
   20 CONTINUE
      END
)";

TEST(PipelineTest, CompilesAllStages) {
  auto cp = CompiledProgram::FromSource(kTiny);
  ASSERT_TRUE(cp.ok()) << cp.error().ToString();
  const CompiledProgram& c = cp.value();
  EXPECT_EQ(c.program().name, "TINY");
  EXPECT_EQ(c.tree().preorder().size(), 2u);
  EXPECT_EQ(c.locality().all().size(), 2u);
  EXPECT_EQ(c.plan().allocate_before_loop.size(), 2u);
  EXPECT_GT(c.trace().reference_count(), 0u);
  EXPECT_EQ(c.virtual_pages(), 3u);  // A: 2 pages, V: 1 page
}

TEST(PipelineTest, ParseErrorSurfaces) {
  auto cp = CompiledProgram::FromSource("      PROGRAM BAD\n      DO 10 I = 1\n      END\n");
  ASSERT_FALSE(cp.ok());
  EXPECT_FALSE(cp.error().message.empty());
}

TEST(PipelineTest, SemanticErrorSurfaces) {
  auto cp = CompiledProgram::FromSource(R"(
      PROGRAM BAD
      DIMENSION A(4)
      A(1) = B(2)
      END
)");
  ASSERT_FALSE(cp.ok());
  EXPECT_NE(cp.error().message.find("undeclared"), std::string::npos);
}

TEST(PipelineTest, TraceIsCachedAcrossCalls) {
  auto cp = CompiledProgram::FromSource(kTiny);
  ASSERT_TRUE(cp.ok());
  const Trace& t1 = cp.value().trace();
  const Trace& t2 = cp.value().trace();
  EXPECT_EQ(&t1, &t2);
}

TEST(PipelineTest, OptionsPropagateToGeometry) {
  PipelineOptions options;
  options.locality.geometry.page_size_bytes = 512;
  auto cp = CompiledProgram::FromSource(kTiny, options);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp.value().virtual_pages(), 2u);  // A: 1 page, V: 1 page
}

TEST(PipelineTest, DirectiveSwitchesPropagate) {
  PipelineOptions options;
  options.directives.insert_allocate = false;
  options.directives.insert_locks = false;
  auto cp = CompiledProgram::FromSource(kTiny, options);
  ASSERT_TRUE(cp.ok());
  EXPECT_TRUE(cp.value().trace().directives().empty());
}

TEST(PipelineTest, LoopMarkersPropagate) {
  PipelineOptions options;
  options.emit_loop_markers = true;
  auto cp = CompiledProgram::FromSource(kTiny, options);
  ASSERT_TRUE(cp.ok());
  bool saw_marker = false;
  for (const TraceEvent& e : cp.value().trace().events()) {
    saw_marker = saw_marker || e.kind == TraceEvent::Kind::kLoopEnter;
  }
  EXPECT_TRUE(saw_marker);
}

TEST(PipelineTest, ListingContainsDirectives) {
  auto cp = CompiledProgram::FromSource(kTiny);
  ASSERT_TRUE(cp.ok());
  std::string listing = cp.value().Listing();
  EXPECT_NE(listing.find("ALLOCATE"), std::string::npos);
  EXPECT_NE(listing.find("LOCK"), std::string::npos);
  EXPECT_NE(listing.find("UNLOCK"), std::string::npos);
}

TEST(PipelineTest, MoveSemanticsKeepReferencesValid) {
  auto cp = CompiledProgram::FromSource(kTiny);
  ASSERT_TRUE(cp.ok());
  CompiledProgram moved = std::move(cp).value();
  // Internal pointers (tree -> program) must survive the move.
  EXPECT_EQ(moved.tree().preorder().size(), 2u);
  EXPECT_EQ(&moved.tree().program(), &moved.program());
  EXPECT_GT(moved.trace().reference_count(), 0u);
}

}  // namespace
}  // namespace cdmm
