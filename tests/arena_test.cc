// Unit tests for the per-simulation scratch arena (src/support/arena.h) and
// the portable SIMD helpers (src/support/simd.h) the hot-path kernels build
// on: alignment, reset-reuse, large-block fallback, stats accounting, ASan
// poisoning of reset regions, and vector-vs-scalar result identity
// (including tie-breaking) for the argmax/max scans.
#include "src/support/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/support/rng.h"
#include "src/support/simd.h"

namespace cdmm {
namespace {

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    for (size_t bytes : {1u, 3u, 7u, 100u}) {
      void* p = arena.Allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
    }
  }
}

TEST(ArenaTest, ZeroByteRequestsGetDistinctPointers) {
  Arena arena;
  void* a = arena.Allocate(0, 1);
  void* b = arena.Allocate(0, 1);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, NewArrayValueInitializes) {
  Arena arena;
  // Dirty the block first so zeroing is observable.
  uint8_t* dirt = arena.NewArray<uint8_t>(256);
  for (size_t i = 0; i < 256; ++i) {
    dirt[i] = 0xAB;
  }
  arena.Reset();
  uint64_t* v = arena.NewArray<uint64_t>(32);
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(v[i], 0u) << i;
  }
}

TEST(ArenaTest, ResetReusesBlocks) {
  Arena arena;
  void* first = arena.Allocate(1024, 8);
  const uint64_t reserved = arena.stats().bytes_reserved;
  const uint64_t blocks = arena.stats().blocks;
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    void* again = arena.Allocate(1024, 8);
    EXPECT_EQ(again, first) << "round " << round;
  }
  // Same block, re-bumped: no new capacity, no new blocks.
  EXPECT_EQ(arena.stats().bytes_reserved, reserved);
  EXPECT_EQ(arena.stats().blocks, blocks);
  EXPECT_EQ(arena.stats().resets, 10u);
}

TEST(ArenaTest, GrowsWhenABlockFills) {
  Arena arena(/*block_bytes=*/256);
  for (int i = 0; i < 32; ++i) {
    arena.Allocate(64, 8);
  }
  EXPECT_GE(arena.stats().blocks, 2u);
  EXPECT_EQ(arena.stats().bytes_allocated, 32u * 64u);
  EXPECT_GE(arena.stats().bytes_reserved, arena.stats().bytes_allocated);
}

TEST(ArenaTest, LargeBlockFallbackAndRelease) {
  Arena arena(/*block_bytes=*/256);
  void* big = arena.Allocate(1 << 20, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.stats().large_blocks, 1u);
  const uint64_t reserved_with_big = arena.stats().bytes_reserved;
  EXPECT_GE(reserved_with_big, static_cast<uint64_t>(1 << 20));
  // The dedicated block's capacity is request-specific; Reset releases it.
  arena.Reset();
  EXPECT_LT(arena.stats().bytes_reserved, static_cast<uint64_t>(1 << 20));
  // And a fresh oversized request gets a fresh dedicated block.
  void* big2 = arena.Allocate(1 << 20, 64);
  ASSERT_NE(big2, nullptr);
  EXPECT_EQ(arena.stats().large_blocks, 2u);
}

TEST(ArenaTest, SmallAllocationsStillFitAfterLargeFallback) {
  Arena arena(/*block_bytes=*/256);
  arena.Allocate(100, 8);
  arena.Allocate(4096, 8);  // dedicated
  int32_t* small = arena.New<int32_t>(42);
  EXPECT_EQ(*small, 42);
}

TEST(ArenaTest, StatsAccumulateAcrossResets) {
  Arena arena;
  arena.Allocate(100, 8);
  arena.Reset();
  arena.Allocate(100, 8);
  EXPECT_EQ(arena.stats().bytes_allocated, 200u);
  EXPECT_EQ(arena.stats().resets, 1u);
}

#ifdef CDMM_ARENA_ASAN
TEST(ArenaTest, ResetPoisonsRetainedMemory) {
  Arena arena;
  char* p = static_cast<char*>(arena.Allocate(64, 8));
  EXPECT_EQ(__asan_address_is_poisoned(p), 0);
  arena.Reset();
  // The retained block is red-zoned until re-handed out: a stale pointer
  // into reset scratch faults instead of silently reading old data.
  EXPECT_EQ(__asan_address_is_poisoned(p), 1);
  char* q = static_cast<char*>(arena.Allocate(64, 8));
  EXPECT_EQ(q, p);
  EXPECT_EQ(__asan_address_is_poisoned(q), 0);
}
#endif

// ---- SIMD helpers ----------------------------------------------------------

size_t ScalarArgMax(const std::vector<uint64_t>& v) {
  size_t best = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) {
      best = i;
    }
  }
  return best;
}

TEST(SimdTest, ArgMaxMatchesScalarOnRandomVectors) {
  SplitMix64 rng(20260809);
  for (size_t n = 1; n <= 64; ++n) {
    for (int round = 0; round < 8; ++round) {
      std::vector<uint64_t> v(n);
      for (uint64_t& x : v) {
        // Mix small and huge values so the unsigned sign-flip path matters.
        x = rng.NextDouble() < 0.5 ? rng.NextBelow(16)
                                   : ~uint64_t{0} - rng.NextBelow(1 << 20);
      }
      EXPECT_EQ(simd::ArgMaxU64(v.data(), n), ScalarArgMax(v))
          << "n=" << n << " round=" << round;
    }
  }
}

TEST(SimdTest, ArgMaxTiesPickTheLowestIndex) {
  // All-equal: index 0 must win at every length, including ones that cross
  // the vector-width thresholds.
  for (size_t n : {1u, 3u, 4u, 7u, 8u, 9u, 15u, 16u, 17u, 33u}) {
    std::vector<uint64_t> v(n, 7);
    EXPECT_EQ(simd::ArgMaxU64(v.data(), n), 0u) << n;
  }
  // Duplicate maxima at interior positions.
  std::vector<uint64_t> v(24, 1);
  v[5] = 100;
  v[17] = 100;
  EXPECT_EQ(simd::ArgMaxU64(v.data(), v.size()), 5u);
}

TEST(SimdTest, ArgMaxExtremes) {
  std::vector<uint64_t> v(20, 0);
  EXPECT_EQ(simd::ArgMaxU64(v.data(), v.size()), 0u);
  v[13] = ~uint64_t{0};
  EXPECT_EQ(simd::ArgMaxU64(v.data(), v.size()), 13u);
  uint64_t one = 42;
  EXPECT_EQ(simd::ArgMaxU64(&one, 1), 0u);
}

TEST(SimdTest, MaxU32MatchesScalar) {
  SplitMix64 rng(99);
  for (size_t n = 0; n <= 80; ++n) {
    std::vector<uint32_t> v(n);
    uint32_t expect = 0;
    for (uint32_t& x : v) {
      x = static_cast<uint32_t>(rng.NextBelow(~uint32_t{0}));
      expect = std::max(expect, x);
    }
    EXPECT_EQ(simd::MaxU32(v.data(), n), expect) << n;
  }
  EXPECT_EQ(simd::MaxU32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace cdmm
