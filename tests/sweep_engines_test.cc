#include "src/vm/sweep_engines.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/exec/sweep_scheduler.h"
#include "src/robust/fault_injector.h"
#include "src/support/rng.h"
#include "src/trace/prepared_trace.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/vmin.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

Trace MakeTrace(const std::vector<PageId>& pages, uint32_t virtual_pages = 0) {
  Trace t("test");
  uint32_t max_page = 0;
  for (PageId p : pages) {
    t.AddRef(p);
    max_page = std::max(max_page, p);
  }
  t.set_virtual_pages(virtual_pages != 0 ? virtual_pages
                                         : (pages.empty() ? 0 : max_page + 1));
  return t;
}

// A mixture of hot-set and scattered references with occasional phase
// shifts — enough structure to exercise gaps of every size class.
Trace RandomTrace(uint64_t seed, size_t refs, uint32_t pages) {
  SplitMix64 rng(seed);
  std::vector<PageId> out;
  out.reserve(refs);
  uint32_t phase_base = 0;
  for (size_t i = 0; i < refs; ++i) {
    if (rng.NextDouble() < 0.002) {
      phase_base = static_cast<uint32_t>(rng.NextBelow(pages));
    }
    PageId p = rng.NextDouble() < 0.7
                   ? static_cast<PageId>((phase_base + rng.NextBelow(8)) % pages)
                   : static_cast<PageId>(rng.NextBelow(pages));
    out.push_back(p);
  }
  return MakeTrace(out, pages);
}

// Tau grid covering the degenerate ends (1, R, > R) plus a spread between.
std::vector<uint64_t> TestTaus(uint64_t r) {
  std::vector<uint64_t> taus = {1, 2, 3, 5, 8, 13, 50, 200, 1000};
  taus.push_back(std::max<uint64_t>(r / 2, 1));
  taus.push_back(std::max<uint64_t>(r, 1));
  taus.push_back(r + 10);  // larger than the whole trace: only cold faults
  return taus;
}

std::vector<SweepPoint> NaiveWsSweep(const Trace& trace, const std::vector<uint64_t>& taus,
                                     const SimOptions& options = {}) {
  return WsSweep(trace, taus, options);
}

TEST(PreparedTraceTest, NextUseChains) {
  Trace t = MakeTrace({3, 1, 3, 2, 1});
  PreparedTrace p = PreparedTrace::Build(t);
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p.distinct_pages(), 3u);
  EXPECT_EQ(p.next_use(0), 2u);  // 3 -> index 2
  EXPECT_EQ(p.next_use(1), 4u);  // 1 -> index 4
  EXPECT_EQ(p.next_use(2), 5u);  // last use of 3
  EXPECT_FALSE(p.has_next_use(2));
  EXPECT_EQ(p.next_use(3), 5u);
  EXPECT_EQ(p.next_use(4), 5u);
  EXPECT_EQ(p.first_use(3), 0u);
  EXPECT_EQ(p.first_use(1), 1u);
  EXPECT_EQ(p.first_use(2), 3u);
  EXPECT_EQ(p.first_use(99), p.size());  // never referenced
}

TEST(PreparedTraceTest, SkipsNonReferenceEvents) {
  Trace with_markers("markers");
  with_markers.set_virtual_pages(4);
  with_markers.AddLoopEnter(1);
  with_markers.AddRef(0);
  with_markers.AddRef(2);
  with_markers.AddLoopExit(1);
  with_markers.AddRef(0);

  PreparedTrace a = PreparedTrace::Build(with_markers);
  PreparedTrace b = PreparedTrace::Build(with_markers.ReferencesOnly());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.pages(), b.pages());
  EXPECT_EQ(a.next_uses(), b.next_uses());
  EXPECT_EQ(a.distinct_pages(), b.distinct_pages());
}

TEST(SweepEnginesTest, WsMatchesNaiveOnHandTrace) {
  Trace t = MakeTrace({0, 1, 0, 2, 1, 0, 3, 3, 2, 0});
  std::vector<uint64_t> taus = {1, 2, 3, 4, 7, 10, 11};
  EXPECT_EQ(OnePassWsSweep(t, taus), NaiveWsSweep(t, taus));
}

TEST(SweepEnginesTest, WsMatchesNaiveOnRandomTraces) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    Trace t = RandomTrace(seed, 4000, 60);
    std::vector<uint64_t> taus = TestTaus(t.reference_count());
    ASSERT_EQ(OnePassWsSweep(t, taus), NaiveWsSweep(t, taus)) << "seed " << seed;
  }
}

TEST(SweepEnginesTest, WsHandlesUnsortedAndDuplicateTaus) {
  Trace t = RandomTrace(5, 2000, 40);
  std::vector<uint64_t> taus = {500, 1, 500, 90, 2, 1, 3000};
  std::vector<SweepPoint> one = OnePassWsSweep(t, taus);
  std::vector<SweepPoint> naive = NaiveWsSweep(t, taus);
  ASSERT_EQ(one, naive);
  // points[i] must correspond to taus[i] even though evaluation is sorted.
  for (size_t i = 0; i < taus.size(); ++i) {
    EXPECT_EQ(one[i].parameter, static_cast<double>(taus[i]));
  }
}

TEST(SweepEnginesTest, WsEmptyTauListYieldsNoPoints) {
  Trace t = RandomTrace(6, 100, 10);
  EXPECT_TRUE(OnePassWsSweep(t, {}).empty());
}

TEST(SweepEnginesTest, WsOnEmptyTrace) {
  Trace t = MakeTrace({});
  std::vector<uint64_t> taus = {1, 5};
  EXPECT_EQ(OnePassWsSweep(t, taus), NaiveWsSweep(t, taus));
}

TEST(SweepEnginesTest, WsMatchesNaiveUnderFaultInjection) {
  FaultInjector injector(FaultInjectionConfig::AtIntensity(17, 0.5));
  SimOptions options;
  options.injector = &injector;
  Trace t = RandomTrace(9, 3000, 50);
  std::vector<uint64_t> taus = TestTaus(t.reference_count());
  EXPECT_EQ(OnePassWsSweep(t, taus, options), NaiveWsSweep(t, taus, options));
}

TEST(SweepEnginesTest, OptMatchesNaiveOnHandTrace) {
  Trace t = MakeTrace({0, 1, 2, 0, 1, 3, 0, 2, 1, 3});
  EXPECT_EQ(OnePassOptSweep(t, 4), NaiveOptSweep(t, 4));
}

TEST(SweepEnginesTest, OptMatchesNaiveOnRandomTraces) {
  for (uint64_t seed : {101u, 202u, 303u}) {
    Trace t = RandomTrace(seed, 3000, 48);
    uint32_t max_frames = t.virtual_pages() + 2;  // past full residency
    ASSERT_EQ(OnePassOptSweep(t, max_frames), NaiveOptSweep(t, max_frames))
        << "seed " << seed;
  }
}

TEST(SweepEnginesTest, OptMatchesPerAllocationSimulateFixed) {
  Trace t = RandomTrace(7, 1500, 24);
  std::vector<SweepPoint> curve = OnePassOptSweep(t, 24);
  ASSERT_EQ(curve.size(), 24u);
  for (uint32_t m : {1u, 2u, 5u, 12u, 24u}) {
    SimResult r = SimulateFixed(t, m, Replacement::kOpt);
    EXPECT_EQ(curve[m - 1].faults, r.faults) << "m=" << m;
    EXPECT_EQ(curve[m - 1].elapsed, r.elapsed) << "m=" << m;
    EXPECT_EQ(curve[m - 1].space_time, r.space_time) << "m=" << m;
  }
}

TEST(SweepEnginesTest, OptMatchesNaiveUnderFaultInjection) {
  FaultInjector injector(FaultInjectionConfig::AtIntensity(23, 0.7));
  SimOptions options;
  options.injector = &injector;
  Trace t = RandomTrace(13, 2000, 32);
  EXPECT_EQ(OnePassOptSweep(t, 32, options), NaiveOptSweep(t, 32, options));
}

TEST(SweepEnginesTest, AllWorkloadsCrossValidate) {
  for (const Workload& w : AllWorkloads()) {
    auto cp = CompiledProgram::FromSource(w.source);
    ASSERT_TRUE(cp.ok()) << w.name;
    std::shared_ptr<const Trace> refs = cp.value().shared_references();
    uint64_t r = refs->reference_count();
    std::shared_ptr<const PreparedTrace> prepared = PreparedTrace::BuildShared(*refs);

    // Reduced grids keep the naive oracle affordable in a unit test.
    std::vector<uint64_t> taus = DefaultTauGrid(std::max<uint64_t>(r, 1), 3);
    ASSERT_EQ(OnePassWsSweep(*prepared, taus), NaiveWsSweep(*refs, taus)) << w.name;

    uint32_t max_frames = std::min(refs->virtual_pages(), 24u);
    ASSERT_EQ(OnePassOptSweep(*prepared, max_frames), NaiveOptSweep(*refs, max_frames))
        << w.name;
  }
}

TEST(SweepEnginesTest, VminOnPreparedTraceMatchesTraceOverload) {
  for (uint64_t seed : {31u, 62u}) {
    Trace t = RandomTrace(seed, 3000, 40);
    PreparedTrace prepared = PreparedTrace::Build(t);
    for (uint64_t retention : {uint64_t{0}, uint64_t{1}, uint64_t{100}}) {
      SimResult a = SimulateVmin(t, {}, retention);
      SimResult b = SimulateVmin(prepared, {}, retention);
      ASSERT_EQ(a.policy, b.policy);
      ASSERT_EQ(a.faults, b.faults);
      ASSERT_EQ(a.elapsed, b.elapsed);
      ASSERT_EQ(a.mean_memory, b.mean_memory);
      ASSERT_EQ(a.space_time, b.space_time);
      ASSERT_EQ(a.max_resident, b.max_resident);
    }
  }
}

TEST(SweepEnginesTest, SchedulerDispatchesBothEnginesIdentically) {
  auto refs = std::make_shared<const Trace>(RandomTrace(77, 2500, 36));
  std::vector<uint64_t> taus = TestTaus(refs->reference_count());
  uint32_t max_frames = refs->virtual_pages();

  std::vector<SweepPoint> ws_serial_naive = SweepScheduler(nullptr, SweepEngine::kNaive)
                                                .Ws(refs, taus);
  std::vector<SweepPoint> opt_serial_naive =
      SweepScheduler(nullptr, SweepEngine::kNaive).Opt(refs, max_frames);
  for (unsigned jobs : {1u, 4u}) {
    ThreadPool pool(jobs);
    for (SweepEngine engine : {SweepEngine::kNaive, SweepEngine::kOnePass}) {
      SweepScheduler sched(&pool, engine);
      ASSERT_EQ(sched.Ws(refs, taus), ws_serial_naive)
          << SweepEngineName(engine) << " jobs=" << jobs;
      ASSERT_EQ(sched.Opt(refs, max_frames), opt_serial_naive)
          << SweepEngineName(engine) << " jobs=" << jobs;
    }
  }
}

TEST(SweepEnginesTest, FingerprintIsStableAndSensitive) {
  Trace t = RandomTrace(3, 800, 16);
  std::vector<uint64_t> taus = {1, 10, 100};
  std::vector<SweepPoint> points = OnePassWsSweep(t, taus);
  uint64_t fp = FingerprintSweep(points);
  EXPECT_EQ(fp, FingerprintSweep(OnePassWsSweep(t, taus)));  // deterministic
  std::vector<SweepPoint> tweaked = points;
  tweaked[1].faults += 1;
  EXPECT_NE(fp, FingerprintSweep(tweaked));
  EXPECT_NE(fp, FingerprintSweep({}));
}

TEST(SweepEnginesTest, EngineNames) {
  EXPECT_STREQ(SweepEngineName(SweepEngine::kNaive), "naive");
  EXPECT_STREQ(SweepEngineName(SweepEngine::kOnePass), "onepass");
}

}  // namespace
}  // namespace cdmm
