// Differential oracle for the hot-path overhaul: the flat SoA kernels
// (SimulateFixed / SimulateWs / SimulateCd and the flat CdCore) must be
// BIT-IDENTICAL — every SimResult field, exact doubles included — to the
// preserved container-based originals in src/vm/legacy_sim.cc, on all 16
// builtin workloads, on seeded random traces, under deterministic fault
// injection, and through a multi-level hierarchy. Plus the stack-distance
// sizing regression: an engine sized from its PreparedTrace never regrows.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/robust/fault_injector.h"
#include "src/support/rng.h"
#include "src/trace/prepared_trace.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/hierarchy.h"
#include "src/vm/legacy_sim.h"
#include "src/vm/stack_distance.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

void ExpectBitIdentical(const SimResult& want, const SimResult& got,
                        const std::string& label) {
  EXPECT_EQ(want.policy, got.policy) << label;
  EXPECT_EQ(want.references, got.references) << label;
  EXPECT_EQ(want.faults, got.faults) << label;
  EXPECT_EQ(want.elapsed, got.elapsed) << label;
  EXPECT_EQ(want.space_time, got.space_time) << label;
  EXPECT_EQ(want.mean_memory, got.mean_memory) << label;
  EXPECT_EQ(want.max_resident, got.max_resident) << label;
  EXPECT_EQ(want.directives_processed, got.directives_processed) << label;
  EXPECT_EQ(want.lock_releases, got.lock_releases) << label;
  EXPECT_EQ(want.allocation_shrinks, got.allocation_shrinks) << label;
  ASSERT_EQ(want.hierarchy_levels.size(), got.hierarchy_levels.size()) << label;
  for (size_t i = 0; i < want.hierarchy_levels.size(); ++i) {
    EXPECT_EQ(want.hierarchy_levels[i], got.hierarchy_levels[i])
        << label << " level " << i;
  }
}

Trace MakeTrace(const std::vector<PageId>& pages) {
  Trace t("test");
  uint32_t max_page = 0;
  for (PageId p : pages) {
    t.AddRef(p);
    max_page = std::max(max_page, p);
  }
  t.set_virtual_pages(pages.empty() ? 0 : max_page + 1);
  return t;
}

// Same generator as the hierarchy/sweep differential suites: hot set +
// scatter + phase shifts.
Trace RandomTrace(uint64_t seed, size_t refs, uint32_t pages) {
  SplitMix64 rng(seed);
  std::vector<PageId> out;
  out.reserve(refs);
  uint32_t phase_base = 0;
  for (size_t i = 0; i < refs; ++i) {
    if (rng.NextDouble() < 0.002) {
      phase_base = static_cast<uint32_t>(rng.NextBelow(pages));
    }
    PageId p = rng.NextDouble() < 0.7
                   ? static_cast<PageId>((phase_base + rng.NextBelow(8)) % pages)
                   : static_cast<PageId>(rng.NextBelow(pages));
    out.push_back(p);
  }
  return MakeTrace(out);
}

// Every SimOptions variant a kernel can run under: nominal, fault-injected,
// and through a 3-level hierarchy (exercising the kHier template arm and
// the eviction-order dependence of per-level traffic).
struct OptionsMatrix {
  OptionsMatrix() {
    injector = FaultInjector(FaultInjectionConfig{.seed = 1234});
    spec = HierarchySpec::Parse("dram-nvm-disk").value();
    injected.injector = &injector;
    hier.hierarchy = &spec;
    hier_injected.injector = &injector;
    hier_injected.hierarchy = &spec;
  }
  FaultInjector injector;
  HierarchySpec spec;
  SimOptions nominal;
  SimOptions injected;
  SimOptions hier;
  SimOptions hier_injected;

  std::vector<std::pair<std::string, const SimOptions*>> all() const {
    return {{"nominal", &nominal},
            {"injected", &injected},
            {"hier", &hier},
            {"hier+injected", &hier_injected}};
  }
};

void CheckFixedAndWs(const Trace& refs, const std::string& label) {
  const PreparedTrace prepared = PreparedTrace::Build(refs);
  const OptionsMatrix matrix;
  for (const auto& [opt_name, options] : matrix.all()) {
    for (uint32_t frames : {2u, 16u, 64u}) {
      for (Replacement repl :
           {Replacement::kLru, Replacement::kFifo, Replacement::kOpt}) {
        const std::string cell = label + "/" + opt_name + "/m=" +
                                 std::to_string(frames) + "/repl=" +
                                 std::to_string(static_cast<int>(repl));
        ExpectBitIdentical(legacy::SimulateFixed(prepared, frames, repl, *options),
                           SimulateFixed(prepared, frames, repl, *options), cell);
      }
    }
    for (uint64_t tau : {1u, 150u, 2000u}) {
      const std::string cell =
          label + "/" + opt_name + "/ws tau=" + std::to_string(tau);
      ExpectBitIdentical(legacy::SimulateWs(refs, tau, *options),
                         SimulateWs(refs, tau, *options), cell);
    }
  }
}

void CheckCd(const Trace& full, const std::string& label) {
  const OptionsMatrix matrix;
  for (const auto& [opt_name, options] : matrix.all()) {
    for (bool honor_locks : {true, false}) {
      CdOptions cd;
      cd.honor_locks = honor_locks;
      cd.sim = *options;
      CdRunInfo want_info;
      CdRunInfo got_info;
      const std::string cell = label + "/" + opt_name +
                               (honor_locks ? "/locks" : "/nolocks");
      ExpectBitIdentical(legacy::SimulateCd(full, cd, &want_info),
                         SimulateCd(full, cd, &got_info), cell);
      EXPECT_EQ(want_info.swap_requests, got_info.swap_requests) << cell;
    }
  }
}

TEST(HotpathBitIdentityTest, AllBuiltinWorkloads) {
  for (const auto* list : {&AllWorkloads(), &ExtendedWorkloads()}) {
    for (const Workload& w : *list) {
      auto cp = CompiledProgram::FromSource(w.source);
      ASSERT_TRUE(cp.ok()) << w.name;
      CheckFixedAndWs(*cp.value().shared_references(), w.name);
      CheckCd(*cp.value().shared_trace(), w.name);
    }
  }
}

TEST(HotpathBitIdentityTest, SeededRandomTraces) {
  for (uint64_t seed : {7u, 21u, 1985u}) {
    Trace t = RandomTrace(seed, /*refs=*/20000, /*pages=*/96);
    CheckFixedAndWs(t, "random seed=" + std::to_string(seed));
    CheckCd(t, "random-cd seed=" + std::to_string(seed));
  }
}

TEST(HotpathBitIdentityTest, AdversarialShapes) {
  // Single page, strided cold sweep, and page ids far above the touched
  // count (exercises the prescan bound paths).
  CheckFixedAndWs(MakeTrace(std::vector<PageId>(500, 3)), "monopage");
  std::vector<PageId> stride;
  for (uint32_t r = 0; r < 4; ++r) {
    for (PageId p = 0; p < 300; p += 3) {
      stride.push_back(p);
    }
  }
  CheckFixedAndWs(MakeTrace(stride), "stride");
  CheckFixedAndWs(MakeTrace({1000000, 5, 1000000, 7, 999999, 5}), "sparse-ids");
}

TEST(HotpathBitIdentityTest, LruSweepMatchesPointwiseSimulation) {
  Trace t = RandomTrace(11, 8000, 64);
  const PreparedTrace prepared = PreparedTrace::Build(t);
  const uint32_t max_frames = 32;
  auto sweep = LruSweep(prepared, max_frames);
  ASSERT_EQ(sweep.size(), static_cast<size_t>(max_frames));
  for (uint32_t m = 1; m <= max_frames; ++m) {
    SimResult one = legacy::SimulateFixed(prepared, m, Replacement::kLru);
    EXPECT_EQ(sweep[m - 1].faults, one.faults) << m;
    EXPECT_EQ(sweep[m - 1].elapsed, one.elapsed) << m;
  }
}

// ---- Stack-distance sizing regression --------------------------------------

TEST(StackDistanceSizingTest, PreparedSizedEngineNeverRegrows) {
  for (const Workload& w : AllWorkloads()) {
    auto cp = CompiledProgram::FromSource(w.source);
    ASSERT_TRUE(cp.ok()) << w.name;
    const PreparedTrace prepared =
        PreparedTrace::Build(*cp.value().shared_references());
    StackDistanceEngine engine(prepared);
    for (uint32_t i = 0; i < prepared.size(); ++i) {
      engine.Next(prepared.page(i));
    }
    EXPECT_EQ(engine.regrows(), 0u) << w.name;
  }
}

TEST(StackDistanceSizingTest, UndersizedHintRegrowsButAgrees) {
  Trace t = RandomTrace(3, 6000, 48);
  const PreparedTrace prepared = PreparedTrace::Build(t);
  StackDistanceEngine sized(prepared);
  StackDistanceEngine tiny(/*expected_refs=*/4, /*expected_pages=*/2);
  uint64_t mismatches = 0;
  for (uint32_t i = 0; i < prepared.size(); ++i) {
    StackDistanceEngine::Touch a = sized.Next(prepared.page(i));
    StackDistanceEngine::Touch b = tiny.Next(prepared.page(i));
    mismatches += (a.depth != b.depth) + (a.previous != b.previous);
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(sized.regrows(), 0u);
  EXPECT_GT(tiny.regrows(), 0u);
}

}  // namespace
}  // namespace cdmm
