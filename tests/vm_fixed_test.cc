#include "src/vm/fixed_alloc.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace cdmm {
namespace {

Trace MakeTrace(const std::vector<PageId>& pages, uint32_t virtual_pages = 0) {
  Trace t("test");
  uint32_t v = virtual_pages;
  if (v == 0) {
    for (PageId p : pages) {
      v = std::max(v, p + 1);
    }
  }
  t.set_virtual_pages(v);
  for (PageId p : pages) {
    t.AddRef(p);
  }
  return t;
}

TEST(LruTest, ColdFaultsOnly) {
  Trace t = MakeTrace({0, 1, 2, 0, 1, 2, 0, 1, 2});
  SimResult r = SimulateFixed(t, 3, Replacement::kLru);
  EXPECT_EQ(r.faults, 3u);
  EXPECT_EQ(r.references, 9u);
  EXPECT_EQ(r.max_resident, 3u);
}

TEST(LruTest, CyclicThrashBelowSetSize) {
  // The classic LRU worst case: cycling over m+1 pages faults on every
  // reference.
  Trace t = MakeTrace({0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3});
  SimResult r = SimulateFixed(t, 3, Replacement::kLru);
  EXPECT_EQ(r.faults, 12u);
}

TEST(LruTest, EvictsLeastRecentlyUsed) {
  // 0,1,2 loaded; touching 0 makes 1 the LRU victim when 3 arrives.
  Trace t = MakeTrace({0, 1, 2, 0, 3, 1});
  SimResult r = SimulateFixed(t, 3, Replacement::kLru);
  // faults: 0,1,2 cold; 3 evicts 1; 1 refaults. Total 5.
  EXPECT_EQ(r.faults, 5u);
}

TEST(LruTest, MetricsFollowTheSharedConvention) {
  Trace t = MakeTrace({0, 1, 0, 1});
  SimOptions options;
  options.fault_service_time = 1000;
  SimResult r = SimulateFixed(t, 2, Replacement::kLru, options);
  EXPECT_EQ(r.faults, 2u);
  EXPECT_EQ(r.elapsed, 4u + 2u * 1000u);
  EXPECT_DOUBLE_EQ(r.mean_memory, 2.0);
  // ST = m*R + PF*D.
  EXPECT_DOUBLE_EQ(r.space_time, 2.0 * 4 + 2.0 * 1000);
}

TEST(FifoTest, EvictsInArrivalOrder) {
  // FIFO ignores the re-touch of 0: victim is still 0.
  Trace t = MakeTrace({0, 1, 2, 0, 3, 0});
  SimResult r = SimulateFixed(t, 3, Replacement::kFifo);
  // 0,1,2 cold; 3 evicts 0; 0 refaults (evicting 1). Total 5.
  EXPECT_EQ(r.faults, 5u);
}

TEST(FifoTest, BeladyAnomalyWitness) {
  // The classic Belady sequence: FIFO with 4 frames faults MORE than with 3.
  std::vector<PageId> seq = {1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};
  Trace t = MakeTrace(seq);
  SimResult r3 = SimulateFixed(t, 3, Replacement::kFifo);
  SimResult r4 = SimulateFixed(t, 4, Replacement::kFifo);
  EXPECT_EQ(r3.faults, 9u);
  EXPECT_EQ(r4.faults, 10u);
}

TEST(LruTest, NoBeladyAnomaly) {
  // LRU is a stack algorithm: faults are non-increasing in m on the Belady
  // sequence (and any other).
  std::vector<PageId> seq = {1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};
  Trace t = MakeTrace(seq);
  uint64_t prev = ~0ull;
  for (uint32_t m = 1; m <= 5; ++m) {
    uint64_t f = SimulateFixed(t, m, Replacement::kLru).faults;
    EXPECT_LE(f, prev) << "m=" << m;
    prev = f;
  }
}

TEST(OptTest, HandComputedBeladyMin) {
  // Classic OPT example: 7 faults for this string with 3 frames.
  std::vector<PageId> seq = {7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1};
  Trace t = MakeTrace(seq);
  SimResult r = SimulateFixed(t, 3, Replacement::kOpt);
  EXPECT_EQ(r.faults, 9u);  // the textbook count for this string is 9
}

TEST(OptTest, OptimalOnCyclicPattern) {
  // On a cycle of 4 pages with 3 frames, OPT keeps faults near 1 per new
  // page by evicting the farthest-future page; LRU faults every time.
  std::vector<PageId> seq;
  for (int i = 0; i < 10; ++i) {
    for (PageId p = 0; p < 4; ++p) {
      seq.push_back(p);
    }
  }
  Trace t = MakeTrace(seq);
  EXPECT_LT(SimulateFixed(t, 3, Replacement::kOpt).faults,
            SimulateFixed(t, 3, Replacement::kLru).faults);
}

TEST(SweepTest, LruSweepMatchesDirectSimulation) {
  // Property: the stack-distance sweep equals per-m simulation exactly.
  SplitMix64 rng(42);
  std::vector<PageId> seq;
  for (int i = 0; i < 3000; ++i) {
    // Mixture of a hot set and a cold tail.
    seq.push_back(rng.NextDouble() < 0.7 ? static_cast<PageId>(rng.NextBelow(6))
                                         : static_cast<PageId>(rng.NextBelow(40)));
  }
  Trace t = MakeTrace(seq, 40);
  auto sweep = LruSweep(t, 40);
  ASSERT_EQ(sweep.size(), 40u);
  for (uint32_t m : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 40u}) {
    SimResult direct = SimulateFixed(t, m, Replacement::kLru);
    EXPECT_EQ(sweep[m - 1].faults, direct.faults) << "m=" << m;
    EXPECT_DOUBLE_EQ(sweep[m - 1].space_time, direct.space_time) << "m=" << m;
    EXPECT_EQ(sweep[m - 1].elapsed, direct.elapsed) << "m=" << m;
  }
}

TEST(SweepTest, FaultsMonotoneInFrames) {
  SplitMix64 rng(7);
  std::vector<PageId> seq;
  for (int i = 0; i < 2000; ++i) {
    seq.push_back(static_cast<PageId>(rng.NextBelow(25)));
  }
  Trace t = MakeTrace(seq, 25);
  auto sweep = LruSweep(t, 25);
  for (size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].faults, sweep[i - 1].faults);
  }
  // At m = V only cold faults remain.
  EXPECT_EQ(sweep.back().faults, 25u);
}

class OptLowerBoundTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OptLowerBoundTest, OptNeverWorseThanLruOrFifo) {
  SplitMix64 rng(GetParam());
  std::vector<PageId> seq;
  for (int i = 0; i < 4000; ++i) {
    seq.push_back(rng.NextDouble() < 0.5 ? static_cast<PageId>(rng.NextBelow(8))
                                         : static_cast<PageId>(rng.NextBelow(64)));
  }
  Trace t = MakeTrace(seq, 64);
  for (uint32_t m : {2u, 4u, 8u, 16u, 32u}) {
    uint64_t opt = SimulateFixed(t, m, Replacement::kOpt).faults;
    EXPECT_LE(opt, SimulateFixed(t, m, Replacement::kLru).faults) << "m=" << m;
    EXPECT_LE(opt, SimulateFixed(t, m, Replacement::kFifo).faults) << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptLowerBoundTest, ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(FixedTest, DirectiveEventsAreIgnored) {
  Trace t("d");
  t.set_virtual_pages(4);
  t.AddRef(0);
  DirectiveRecord d;
  d.kind = DirectiveRecord::Kind::kAllocate;
  d.requests = {AllocateRequest{1, 1}};
  t.AddDirective(d);
  t.AddRef(1);
  SimResult r = SimulateFixed(t, 2, Replacement::kLru);
  EXPECT_EQ(r.references, 2u);
  EXPECT_EQ(r.faults, 2u);
}

TEST(FixedTest, EmptyTrace) {
  Trace t("empty");
  SimResult r = SimulateFixed(t, 4, Replacement::kLru);
  EXPECT_EQ(r.faults, 0u);
  EXPECT_EQ(r.references, 0u);
  EXPECT_DOUBLE_EQ(r.space_time, 0.0);
}

TEST(FixedTest, SingleFrame) {
  Trace t = MakeTrace({0, 0, 0, 1, 1, 0});
  SimResult r = SimulateFixed(t, 1, Replacement::kLru);
  EXPECT_EQ(r.faults, 3u);
  EXPECT_EQ(r.max_resident, 1u);
}

TEST(FixedTest, ZeroFramesDies) {
  Trace t = MakeTrace({0});
  EXPECT_DEATH(SimulateFixed(t, 0, Replacement::kLru), "at least one frame");
}

}  // namespace
}  // namespace cdmm
