// The differential-oracle suite for the N-level hierarchy (ISSUE 6 headline
// artifact): a 1-boundary HierarchySpec with the legacy 2000-reference
// service must be BIT-IDENTICAL — every SimResult field, exact doubles
// included — to the pre-hierarchy simulators, on all nine workloads, on
// seeded random traces, and under deterministic fault injection; the
// multiprogrammed OS entry points get the same treatment. Plus: spec
// grammar tests, hand-trace engine semantics, and --jobs determinism for
// the fault-penalty ladder.
#include "src/vm/hierarchy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/exec/sweep_scheduler.h"
#include "src/exec/thread_pool.h"
#include "src/os/multiprog.h"
#include "src/robust/fault_injector.h"
#include "src/support/rng.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/policy_spec.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

Trace MakeTrace(const std::vector<PageId>& pages, uint32_t virtual_pages = 0) {
  Trace t("test");
  uint32_t max_page = 0;
  for (PageId p : pages) {
    t.AddRef(p);
    max_page = std::max(max_page, p);
  }
  t.set_virtual_pages(virtual_pages != 0 ? virtual_pages
                                         : (pages.empty() ? 0 : max_page + 1));
  return t;
}

// Same generator as sweep_engines_test: hot set + scatter + phase shifts.
Trace RandomTrace(uint64_t seed, size_t refs, uint32_t pages) {
  SplitMix64 rng(seed);
  std::vector<PageId> out;
  out.reserve(refs);
  uint32_t phase_base = 0;
  for (size_t i = 0; i < refs; ++i) {
    if (rng.NextDouble() < 0.002) {
      phase_base = static_cast<uint32_t>(rng.NextBelow(pages));
    }
    PageId p = rng.NextDouble() < 0.7
                   ? static_cast<PageId>((phase_base + rng.NextBelow(8)) % pages)
                   : static_cast<PageId>(rng.NextBelow(pages));
    out.push_back(p);
  }
  return MakeTrace(out, pages);
}

// Bit-identity: every field exact, doubles compared with == (EXPECT_EQ), not
// with a tolerance. The hierarchy run is additionally allowed (required) to
// carry its per-level traffic, which the legacy run by definition lacks.
void ExpectBitIdentical(const SimResult& legacy, const SimResult& hier,
                        const std::string& label) {
  EXPECT_EQ(legacy.policy, hier.policy) << label;
  EXPECT_EQ(legacy.references, hier.references) << label;
  EXPECT_EQ(legacy.faults, hier.faults) << label;
  EXPECT_EQ(legacy.elapsed, hier.elapsed) << label;
  EXPECT_EQ(legacy.space_time, hier.space_time) << label;
  EXPECT_EQ(legacy.mean_memory, hier.mean_memory) << label;
  EXPECT_EQ(legacy.max_resident, hier.max_resident) << label;
  EXPECT_EQ(legacy.directives_processed, hier.directives_processed) << label;
  EXPECT_EQ(legacy.lock_releases, hier.lock_releases) << label;
  EXPECT_EQ(legacy.allocation_shrinks, hier.allocation_shrinks) << label;
  EXPECT_TRUE(legacy.hierarchy_levels.empty()) << label;
  ASSERT_EQ(hier.hierarchy_levels.size(), 1u) << label;
  // The degenerate backing store services every fault.
  EXPECT_EQ(hier.hierarchy_levels[0].hits, hier.faults) << label;
}

void ExpectOsBitIdentical(const OsRunResult& legacy, const OsRunResult& hier,
                          const std::string& label) {
  EXPECT_EQ(legacy.total_time, hier.total_time) << label;
  EXPECT_EQ(legacy.total_faults, hier.total_faults) << label;
  EXPECT_EQ(legacy.swaps, hier.swaps) << label;
  EXPECT_EQ(legacy.mean_pool_used, hier.mean_pool_used) << label;
  EXPECT_EQ(legacy.cpu_utilisation, hier.cpu_utilisation) << label;
  EXPECT_EQ(legacy.failed_processes, hier.failed_processes) << label;
  EXPECT_EQ(legacy.load_control_suspensions, hier.load_control_suspensions) << label;
  EXPECT_EQ(legacy.swap_device_failures, hier.swap_device_failures) << label;
  EXPECT_EQ(legacy.swap_retries_exhausted, hier.swap_retries_exhausted) << label;
  EXPECT_EQ(legacy.phantom_peak_frames, hier.phantom_peak_frames) << label;
  ASSERT_EQ(legacy.processes.size(), hier.processes.size()) << label;
  for (size_t i = 0; i < legacy.processes.size(); ++i) {
    const OsProcessStats& a = legacy.processes[i];
    const OsProcessStats& b = hier.processes[i];
    EXPECT_EQ(a.name, b.name) << label;
    EXPECT_EQ(a.references, b.references) << label << " " << a.name;
    EXPECT_EQ(a.faults, b.faults) << label << " " << a.name;
    EXPECT_EQ(a.started_at, b.started_at) << label << " " << a.name;
    EXPECT_EQ(a.finished_at, b.finished_at) << label << " " << a.name;
    EXPECT_EQ(a.mean_held, b.mean_held) << label << " " << a.name;
    EXPECT_EQ(a.swapped_out, b.swapped_out) << label << " " << a.name;
    EXPECT_EQ(a.suspensions, b.suspensions) << label << " " << a.name;
    EXPECT_EQ(a.lock_releases, b.lock_releases) << label << " " << a.name;
    EXPECT_EQ(a.failure, b.failure) << label << " " << a.name;
    EXPECT_EQ(a.completed, b.completed) << label << " " << a.name;
  }
  EXPECT_TRUE(legacy.hierarchy_levels.empty()) << label;
  ASSERT_EQ(hier.hierarchy_levels.size(), 1u) << label;
  EXPECT_EQ(hier.hierarchy_levels[0].hits, hier.total_faults) << label;
}

// ---- Spec grammar ----------------------------------------------------------

TEST(HierarchySpecTest, LegacyIsDegenerate) {
  HierarchySpec spec = HierarchySpec::Legacy(2000);
  EXPECT_TRUE(spec.degenerate());
  EXPECT_EQ(spec.bottom_latency(), 2000u);
  EXPECT_EQ(spec.ToString(), "disk:*:2000");
}

TEST(HierarchySpecTest, ParsesPresets) {
  for (const auto& [name, text] : HierarchySpec::Presets()) {
    auto by_name = HierarchySpec::Parse(name);
    auto by_text = HierarchySpec::Parse(text);
    ASSERT_TRUE(by_name.ok()) << name;
    ASSERT_TRUE(by_text.ok()) << text;
    EXPECT_EQ(by_name.value(), by_text.value()) << name;
  }
  auto three = HierarchySpec::Parse("dram-nvm-disk");
  ASSERT_TRUE(three.ok());
  ASSERT_EQ(three.value().levels.size(), 2u);
  EXPECT_EQ(three.value().levels[0].name, "nvm");
  EXPECT_EQ(three.value().levels[0].capacity, 512u);
  EXPECT_EQ(three.value().levels[0].latency, 60u);
  EXPECT_EQ(three.value().levels[1].capacity, 0u);
  EXPECT_FALSE(three.value().degenerate());
}

TEST(HierarchySpecTest, ParseToStringRoundTrips) {
  for (const std::string& text :
       {std::string("disk:*:2000"), std::string("nvm:512:60,disk:*:2000"),
        std::string("l2:8:4:fifo,nvm:512:60,disk:*:20")}) {
    auto spec = HierarchySpec::Parse(text);
    ASSERT_TRUE(spec.ok()) << text;
    EXPECT_EQ(spec.value().ToString(), text);
    auto again = HierarchySpec::Parse(spec.value().ToString());
    ASSERT_TRUE(again.ok()) << text;
    EXPECT_EQ(again.value(), spec.value());
  }
}

TEST(HierarchySpecTest, RejectsMalformedSpecs) {
  for (const std::string& bad : {
           std::string(""),                        // empty
           std::string("disk"),                    // too few fields
           std::string("disk:*:2000:lru:extra"),   // too many fields
           std::string("DISK:*:2000"),             // uppercase name
           std::string("disk:0:2000"),             // zero capacity
           std::string("disk:*:0"),                // zero latency
           std::string("disk:*:fast"),             // non-numeric latency
           std::string("disk:*:2000:mru"),         // unknown policy
           std::string("nvm:*:60,disk:*:2000"),    // '*' before the last level
           std::string("nvm:512:60,disk:64:2000"), // bounded backing store
           std::string("no-such-preset"),          // not a preset, not a level
       }) {
    auto spec = HierarchySpec::Parse(bad);
    EXPECT_FALSE(spec.ok()) << "'" << bad << "' should not parse";
  }
}

TEST(HierarchySpecTest, WithBottomLatencyReplacesOnlyTheBackingStore) {
  auto spec = HierarchySpec::Parse("nvm:512:60,disk:*:2000").value();
  HierarchySpec rung = spec.WithBottomLatency(20);
  EXPECT_EQ(rung.levels[0].latency, 60u);
  EXPECT_EQ(rung.bottom_latency(), 20u);
  EXPECT_EQ(spec.bottom_latency(), 2000u);  // the original is untouched
}

// ---- Engine semantics on hand traces ---------------------------------------

TEST(HierarchyEngineTest, FaultFromBackingStoreCostsBottomLatency) {
  HierarchySpec spec = HierarchySpec::Parse("nvm:2:60,disk:*:2000").value();
  HierarchyEngine engine(spec, nullptr);
  // Never-evicted pages are only in the backing store.
  EXPECT_EQ(engine.OnFault(7, 0, 0), 2000u);
  EXPECT_EQ(engine.OnFault(8, 0, 1), 2000u);
  std::vector<HierarchyLevelTraffic> traffic = engine.Traffic();
  ASSERT_EQ(traffic.size(), 2u);
  EXPECT_EQ(traffic[0].hits, 0u);
  EXPECT_EQ(traffic[1].hits, 2u);
  EXPECT_EQ(traffic[1].service_ticks, 4000u);
}

TEST(HierarchyEngineTest, DemotedPageIsAFastHitExactlyOnce) {
  HierarchySpec spec = HierarchySpec::Parse("nvm:2:60,disk:*:2000").value();
  HierarchyEngine engine(spec, nullptr);
  engine.OnEvict(7);
  // The victim cache holds the page: the re-fault costs the NVM latency and
  // promotes the page out (exclusivity) ...
  EXPECT_EQ(engine.OnFault(7, 0, 0), 60u);
  // ... so a second fault without an intervening eviction goes to disk.
  EXPECT_EQ(engine.OnFault(7, 0, 1), 2000u);
  std::vector<HierarchyLevelTraffic> traffic = engine.Traffic();
  EXPECT_EQ(traffic[0].hits, 1u);
  EXPECT_EQ(traffic[0].demotions_in, 1u);
  EXPECT_EQ(traffic[1].hits, 1u);
}

TEST(HierarchyEngineTest, OverflowCascadesTheStalestEntryDownward) {
  HierarchySpec spec = HierarchySpec::Parse("nvm:2:60,ssd:1:400,disk:*:2000").value();
  HierarchyEngine engine(spec, nullptr);
  engine.OnEvict(1);  // nvm: [1]
  engine.OnEvict(2);  // nvm: [2 1]
  engine.OnEvict(3);  // nvm: [3 2], 1 -> ssd: [1]
  engine.OnEvict(4);  // nvm: [4 3], 2 -> ssd: [2], 1 -> disk
  std::vector<HierarchyLevelTraffic> traffic = engine.Traffic();
  EXPECT_EQ(traffic[0].demotions_in, 4u);
  EXPECT_EQ(traffic[0].evictions, 2u);
  EXPECT_EQ(traffic[1].demotions_in, 2u);
  EXPECT_EQ(traffic[1].evictions, 1u);
  EXPECT_EQ(engine.OnFault(4, 0, 0), 60u);    // newest, still in nvm
  EXPECT_EQ(engine.OnFault(2, 0, 1), 400u);   // pushed to ssd
  EXPECT_EQ(engine.OnFault(1, 0, 2), 2000u);  // fell to the backing store
}

TEST(HierarchyEngineTest, DegenerateEngineChargesFlatServiceAndIgnoresEvicts) {
  HierarchySpec spec = HierarchySpec::Legacy(1234);
  HierarchyEngine engine(spec, nullptr);
  engine.OnEvict(1);
  engine.OnEvict(2);
  EXPECT_EQ(engine.OnFault(1, 0, 0), 1234u);
  EXPECT_EQ(engine.OnFault(2, 0, 1), 1234u);
  std::vector<HierarchyLevelTraffic> traffic = engine.Traffic();
  ASSERT_EQ(traffic.size(), 1u);
  EXPECT_EQ(traffic[0].hits, 2u);
  EXPECT_EQ(traffic[0].demotions_in, 0u);  // no intermediate level to fill
}

TEST(HierarchyEngineTest, DegenerateOnFaultMatchesFaultServiceCostUnderInjection) {
  FaultInjector injector(FaultInjectionConfig::AtIntensity(99, 0.9));
  SimOptions legacy;
  legacy.fault_service_time = 2000;
  legacy.injector = &injector;
  HierarchyEngine engine(HierarchySpec::Legacy(2000), &injector);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(engine.OnFault(/*key=*/i % 7, /*stream=*/0, i), FaultServiceCost(legacy, i))
        << "fault " << i;
  }
}

// ---- Differential oracle: uniprogrammed policies ---------------------------

class HierarchyOracleTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const CompiledProgram& Compiled(const std::string& name) {
    static auto* cache = new std::map<std::string, std::unique_ptr<CompiledProgram>>();
    auto it = cache->find(name);
    if (it == cache->end()) {
      auto cp = CompiledProgram::FromSource(FindWorkload(name).source);
      EXPECT_TRUE(cp.ok());
      it = cache->emplace(name, std::make_unique<CompiledProgram>(std::move(cp).value())).first;
    }
    return *it->second;
  }
};

TEST_P(HierarchyOracleTest, DegenerateSpecIsBitIdenticalForEveryPolicySpec) {
  const CompiledProgram& cp = Compiled(GetParam());
  const Trace& full = cp.trace();
  Trace refs = full.ReferencesOnly();
  HierarchySpec degenerate = HierarchySpec::Legacy(2000);
  SimOptions legacy;
  SimOptions with_hier;
  with_hier.hierarchy = &degenerate;
  for (const std::string& spec : KnownPolicySpecs()) {
    std::optional<SimResult> a = RunPolicySpec(spec, full, refs, legacy);
    std::optional<SimResult> b = RunPolicySpec(spec, full, refs, with_hier);
    ASSERT_TRUE(a.has_value()) << spec;
    ASSERT_TRUE(b.has_value()) << spec;
    ExpectBitIdentical(*a, *b, GetParam() + "/" + spec);
  }
}

TEST_P(HierarchyOracleTest, DegenerateSpecIsBitIdenticalUnderFaultInjection) {
  const CompiledProgram& cp = Compiled(GetParam());
  const Trace& full = cp.trace();
  Trace refs = full.ReferencesOnly();
  FaultInjector injector(FaultInjectionConfig::AtIntensity(42, 0.8));
  HierarchySpec degenerate = HierarchySpec::Legacy(2000);
  SimOptions legacy;
  legacy.injector = &injector;
  SimOptions with_hier = legacy;
  with_hier.hierarchy = &degenerate;
  for (const std::string& spec :
       {std::string("lru:16"), std::string("ws:2000"), std::string("cd-outer"),
        std::string("pff:2000"), std::string("dws:2000"), std::string("vmin")}) {
    std::optional<SimResult> a = RunPolicySpec(spec, full, refs, legacy);
    std::optional<SimResult> b = RunPolicySpec(spec, full, refs, with_hier);
    ASSERT_TRUE(a.has_value() && b.has_value()) << spec;
    ExpectBitIdentical(*a, *b, GetParam() + "/injected/" + spec);
  }
}

TEST_P(HierarchyOracleTest, NonDefaultServiceTimeStaysBitIdentical) {
  const CompiledProgram& cp = Compiled(GetParam());
  const Trace& full = cp.trace();
  Trace refs = full.ReferencesOnly();
  for (uint64_t service : {20ull, 200ull}) {
    HierarchySpec degenerate = HierarchySpec::Legacy(service);
    SimOptions legacy;
    legacy.fault_service_time = service;
    SimOptions with_hier = legacy;
    with_hier.hierarchy = &degenerate;
    for (const std::string& spec :
         {std::string("lru:16"), std::string("ws:2000"), std::string("cd-outer")}) {
      std::optional<SimResult> a = RunPolicySpec(spec, full, refs, legacy);
      std::optional<SimResult> b = RunPolicySpec(spec, full, refs, with_hier);
      ASSERT_TRUE(a.has_value() && b.has_value()) << spec;
      ExpectBitIdentical(*a, *b, GetParam() + "/service=" + std::to_string(service) +
                                     "/" + spec);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllNine, HierarchyOracleTest,
                         ::testing::Values("MAIN", "FDJAC", "TQL", "FIELD", "INIT", "APPROX",
                                           "HYBRJ", "CONDUCT", "HWSCRT"));

TEST(HierarchyOracleRandomTest, DegenerateSpecIsBitIdenticalOnRandomTraces) {
  for (uint64_t seed : {1ull, 7ull, 1985ull}) {
    Trace t = RandomTrace(seed, 20000, 64);
    HierarchySpec degenerate = HierarchySpec::Legacy(2000);
    SimOptions legacy;
    SimOptions with_hier;
    with_hier.hierarchy = &degenerate;
    for (const std::string& spec :
         {std::string("lru:12"), std::string("fifo:12"), std::string("opt:12"),
          std::string("ws:500"), std::string("sws:500"), std::string("vsws"),
          std::string("pff:500"), std::string("dws:500"), std::string("vmin")}) {
      std::optional<SimResult> a = RunPolicySpec(spec, t, t, legacy);
      std::optional<SimResult> b = RunPolicySpec(spec, t, t, with_hier);
      ASSERT_TRUE(a.has_value() && b.has_value()) << spec;
      ExpectBitIdentical(*a, *b, "seed=" + std::to_string(seed) + "/" + spec);
    }
  }
}

// ---- Differential oracle: the multiprogrammed OS ---------------------------

class HierarchyOsOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto a = CompiledProgram::FromSource(FindWorkload("FDJAC").source);
    auto b = CompiledProgram::FromSource(FindWorkload("TQL").source);
    ASSERT_TRUE(a.ok() && b.ok());
    a_ = std::make_unique<CompiledProgram>(std::move(a).value());
    b_ = std::make_unique<CompiledProgram>(std::move(b).value());
  }

  std::vector<OsProcessSpec> Mix() const {
    return {OsProcessSpec{"A", &a_->trace(), 1}, OsProcessSpec{"B", &b_->trace(), 0}};
  }

  std::unique_ptr<CompiledProgram> a_;
  std::unique_ptr<CompiledProgram> b_;
};

TEST_F(HierarchyOsOracleTest, DegenerateSpecIsBitIdenticalForAllThreeSchedulers) {
  OsOptions legacy;
  legacy.total_frames = 64;
  HierarchySpec degenerate = HierarchySpec::Legacy(legacy.fault_service_time);
  OsOptions with_hier = legacy;
  with_hier.hierarchy = &degenerate;
  ExpectOsBitIdentical(RunMultiprogrammedCd(Mix(), legacy).value(),
                       RunMultiprogrammedCd(Mix(), with_hier).value(), "cd");
  ExpectOsBitIdentical(RunEqualPartitionLru(Mix(), legacy).value(),
                       RunEqualPartitionLru(Mix(), with_hier).value(), "equal-lru");
  ExpectOsBitIdentical(RunMultiprogrammedWs(Mix(), legacy, 2000).value(),
                       RunMultiprogrammedWs(Mix(), with_hier, 2000).value(), "ws");
}

TEST_F(HierarchyOsOracleTest, DegenerateSpecIsBitIdenticalUnderFaultInjection) {
  FaultInjector injector(FaultInjectionConfig::AtIntensity(7, 0.6));
  OsOptions legacy;
  legacy.total_frames = 64;
  legacy.injector = &injector;
  HierarchySpec degenerate = HierarchySpec::Legacy(legacy.fault_service_time);
  OsOptions with_hier = legacy;
  with_hier.hierarchy = &degenerate;
  ExpectOsBitIdentical(RunMultiprogrammedCd(Mix(), legacy).value(),
                       RunMultiprogrammedCd(Mix(), with_hier).value(), "cd/injected");
  ExpectOsBitIdentical(RunMultiprogrammedWs(Mix(), legacy, 2000).value(),
                       RunMultiprogrammedWs(Mix(), with_hier, 2000).value(), "ws/injected");
}

TEST_F(HierarchyOsOracleTest, MultiLevelRunIsDeterministicAndAccountsEveryFault) {
  HierarchySpec spec = HierarchySpec::Parse("nvm:32:60,disk:*:2000").value();
  OsOptions options;
  options.total_frames = 64;
  options.hierarchy = &spec;
  OsRunResult r1 = RunMultiprogrammedCd(Mix(), options).value();
  OsRunResult r2 = RunMultiprogrammedCd(Mix(), options).value();
  EXPECT_EQ(r1.total_time, r2.total_time);
  EXPECT_EQ(r1.total_faults, r2.total_faults);
  ASSERT_EQ(r1.hierarchy_levels.size(), 2u);
  EXPECT_EQ(r1.hierarchy_levels[0].hits + r1.hierarchy_levels[1].hits, r1.total_faults);
  EXPECT_EQ(r1.hierarchy_levels[0].level, "nvm");
  // Processes re-fault pages they evicted, so the victim cache must see use.
  EXPECT_GT(r1.hierarchy_levels[0].demotions_in, 0u);
}

// ---- Multi-level behaviour + accounting ------------------------------------

TEST(HierarchyTrafficTest, EveryFaultIsAccountedToExactlyOneLevel) {
  Trace t = RandomTrace(3, 20000, 64);
  HierarchySpec spec = HierarchySpec::Parse("nvm:16:60,ssd:32:400,disk:*:2000").value();
  SimOptions options;
  options.hierarchy = &spec;
  SimResult r = SimulateFixed(t, 12, Replacement::kLru, options);
  ASSERT_EQ(r.hierarchy_levels.size(), 3u);
  uint64_t hits = 0;
  uint64_t service = 0;
  for (const HierarchyLevelTraffic& level : r.hierarchy_levels) {
    hits += level.hits;
    service += level.service_ticks;
  }
  EXPECT_EQ(hits, r.faults);
  // elapsed = R + total service; the traffic must reconcile exactly.
  EXPECT_EQ(r.elapsed, r.references + service);
}

TEST(HierarchyTrafficTest, VictimCacheTurnsCapacityMissesIntoFastFaults) {
  // A cyclic trace over 32 pages with 12 frames: pure capacity misses, all
  // of which the 64-frame NVM level can absorb after warm-up.
  std::vector<PageId> pages;
  for (int round = 0; round < 50; ++round) {
    for (PageId p = 0; p < 32; ++p) {
      pages.push_back(p);
    }
  }
  Trace t = MakeTrace(pages);
  HierarchySpec slow = HierarchySpec::Legacy(2000);
  HierarchySpec fast = HierarchySpec::Parse("nvm:64:60,disk:*:2000").value();
  SimOptions with_slow;
  with_slow.hierarchy = &slow;
  SimOptions with_fast;
  with_fast.hierarchy = &fast;
  SimResult base = SimulateFixed(t, 12, Replacement::kLru, with_slow);
  SimResult nvm = SimulateFixed(t, 12, Replacement::kLru, with_fast);
  EXPECT_EQ(base.faults, nvm.faults);  // the RAM policy is unchanged
  EXPECT_LT(nvm.elapsed, base.elapsed);
  ASSERT_EQ(nvm.hierarchy_levels.size(), 2u);
  // Only the 32 cold misses go to disk; every re-fault hits the victim cache.
  EXPECT_EQ(nvm.hierarchy_levels[1].hits, 32u);
  EXPECT_EQ(nvm.hierarchy_levels[0].hits, nvm.faults - 32u);
}

// ---- Migration-failure injection -------------------------------------------

TEST(HierarchyMigrationTest, InjectedFailuresAreDeterministicAndCounted) {
  Trace t = RandomTrace(11, 20000, 64);
  FaultInjectionConfig config;
  config.seed = 5;
  config.migration_failure_rate = 0.3;
  FaultInjector injector(config);
  HierarchySpec spec = HierarchySpec::Parse("nvm:16:60,disk:*:2000").value();
  SimOptions options;
  options.hierarchy = &spec;
  options.injector = &injector;
  SimResult r1 = SimulateFixed(t, 12, Replacement::kLru, options);
  SimResult r2 = SimulateFixed(t, 12, Replacement::kLru, options);
  EXPECT_EQ(r1.elapsed, r2.elapsed);
  ASSERT_EQ(r1.hierarchy_levels.size(), 2u);
  EXPECT_EQ(r1.hierarchy_levels[0].demotion_drops, r2.hierarchy_levels[0].demotion_drops);
  EXPECT_EQ(r1.hierarchy_levels[0].migration_retries,
            r2.hierarchy_levels[0].migration_retries);
  // At a 30% failure rate over thousands of demotions, both kinds of
  // migration adversity must actually fire.
  EXPECT_GT(r1.hierarchy_levels[0].demotion_drops, 0u);
  EXPECT_GT(r1.hierarchy_levels[0].migration_retries, 0u);
}

TEST(HierarchyMigrationTest, DisabledInjectorNeverFails) {
  FaultInjector off(FaultInjectionConfig{});
  EXPECT_FALSE(off.enabled());
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(off.MigrationAttemptFails(i));
  }
  FaultInjectionConfig no_rate;
  no_rate.seed = 3;  // enabled, but the migration knob is left at 0
  FaultInjector zero(no_rate);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(zero.MigrationAttemptFails(i));
  }
}

TEST(HierarchyMigrationTest, RetriesLengthenFaultsButNeverLosePages) {
  Trace t = RandomTrace(13, 20000, 64);
  HierarchySpec spec = HierarchySpec::Parse("nvm:16:60,disk:*:2000").value();
  SimOptions nominal;
  nominal.hierarchy = &spec;
  FaultInjectionConfig config;
  config.seed = 5;
  config.migration_failure_rate = 0.3;
  FaultInjector injector(config);
  SimOptions injected = nominal;
  injected.injector = &injector;
  SimResult clean = SimulateFixed(t, 12, Replacement::kLru, nominal);
  SimResult hurt = SimulateFixed(t, 12, Replacement::kLru, injected);
  // RAM-level behaviour (the fault count) is untouched by migration failures;
  // only service times and level placement change.
  EXPECT_EQ(clean.faults, hurt.faults);
  EXPECT_GE(hurt.elapsed, clean.elapsed);
}

// ---- The fault-penalty ladder at --jobs 1/4/8 ------------------------------

TEST(HierarchyLadderTest, SameScheduleAtAnyJobCount) {
  auto cp = CompiledProgram::FromSource(FindWorkload("FDJAC").source);
  ASSERT_TRUE(cp.ok());
  auto full = cp.value().shared_trace();
  auto refs = cp.value().shared_references();
  HierarchySpec shape = HierarchySpec::Parse("nvm:64:60,disk:*:2000").value();
  std::vector<std::string> policies = {"cd-outer", "lru:16", "ws:2000"};
  std::vector<uint64_t> penalties = {2000, 200, 20};
  FaultInjectionConfig config;
  config.seed = 17;
  config.migration_failure_rate = 0.2;
  FaultInjector injector(config);
  SimOptions base;
  base.injector = &injector;

  std::vector<std::vector<HierarchyLadderCell>> runs;
  for (unsigned jobs : {1u, 4u, 8u}) {
    ThreadPool pool(jobs);
    SweepScheduler sched(&pool);
    runs.push_back(sched.HierarchyLadder(full, refs, shape, policies, penalties, base));
  }
  ASSERT_EQ(runs[0].size(), policies.size() * penalties.size());
  for (size_t j = 1; j < runs.size(); ++j) {
    ASSERT_EQ(runs[j].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      const HierarchyLadderCell& a = runs[0][i];
      const HierarchyLadderCell& b = runs[j][i];
      EXPECT_EQ(a.policy, b.policy);
      EXPECT_EQ(a.penalty, b.penalty);
      EXPECT_EQ(a.spec, b.spec);
      EXPECT_EQ(a.result.faults, b.result.faults) << a.policy << "@" << a.penalty;
      EXPECT_EQ(a.result.elapsed, b.result.elapsed) << a.policy << "@" << a.penalty;
      EXPECT_EQ(a.result.space_time, b.result.space_time) << a.policy << "@" << a.penalty;
      EXPECT_EQ(a.result.hierarchy_levels, b.result.hierarchy_levels)
          << a.policy << "@" << a.penalty;
    }
  }
}

// ---- Differential oracle: the Result<> failure paths -----------------------

namespace {

// A trace whose first directive demands `demand` frames at PI=1 — the
// unfittable-workload probe the OS robustness tests use.
Trace GreedyDemandTrace(uint32_t demand, int work) {
  Trace t("greedy");
  t.set_virtual_pages(demand + 1);
  DirectiveRecord d;
  d.kind = DirectiveRecord::Kind::kAllocate;
  d.requests = {AllocateRequest{1, demand}};
  t.AddDirective(d);
  for (int i = 0; i < work; ++i) {
    for (PageId p = 0; p < demand; ++p) {
      t.AddRef(p);
    }
  }
  return t;
}

}  // namespace

TEST(HierarchyOsErrorTest, UnfittableMixErrorsIdenticallyWithAndWithoutHierarchy) {
  Trace t = GreedyDemandTrace(4, 1);
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"A", &t, 0}, OsProcessSpec{"B", &t, 0}, OsProcessSpec{"C", &t, 0}};
  OsOptions legacy;
  legacy.total_frames = 4;
  legacy.initial_allocation = 2;
  Result<OsRunResult> flat = RunMultiprogrammedCd(specs, legacy);

  HierarchySpec spec = HierarchySpec::Parse("nvm:2:60,disk:*:2000").value();
  OsOptions with = legacy;
  with.hierarchy = &spec;
  Result<OsRunResult> layered = RunMultiprogrammedCd(specs, with);

  ASSERT_FALSE(flat.ok());
  ASSERT_FALSE(layered.ok());
  EXPECT_EQ(flat.error().message, layered.error().message);
}

TEST(HierarchyOsErrorTest, FailUnfittablePathIsBitIdenticalUnderADegenerateSpec) {
  // The graceful-degradation path (one process fails, the mix keeps going)
  // must obey the same oracle as the nominal path: a 1-boundary spec with
  // the legacy service time reproduces the flat run exactly, failure
  // bookkeeping included.
  Trace big = GreedyDemandTrace(100, 3);
  Trace small = GreedyDemandTrace(10, 3);
  std::vector<OsProcessSpec> specs = {
      OsProcessSpec{"BIG", &big, 0}, OsProcessSpec{"SMALL", &small, 0}};
  OsOptions legacy;
  legacy.total_frames = 48;
  legacy.fail_unfittable = true;
  OsRunResult flat = RunMultiprogrammedCd(specs, legacy).value();

  HierarchySpec degenerate = HierarchySpec::Legacy(2000);
  OsOptions with = legacy;
  with.hierarchy = &degenerate;
  OsRunResult layered = RunMultiprogrammedCd(specs, with).value();

  EXPECT_EQ(flat.failed_processes, 1u);
  EXPECT_EQ(layered.failed_processes, flat.failed_processes);
  EXPECT_EQ(layered.total_time, flat.total_time);
  EXPECT_EQ(layered.total_faults, flat.total_faults);
  ASSERT_EQ(layered.processes.size(), flat.processes.size());
  for (size_t i = 0; i < flat.processes.size(); ++i) {
    EXPECT_EQ(layered.processes[i].completed, flat.processes[i].completed) << i;
    EXPECT_EQ(layered.processes[i].failure, flat.processes[i].failure) << i;
    EXPECT_EQ(layered.processes[i].references, flat.processes[i].references) << i;
    EXPECT_EQ(layered.processes[i].faults, flat.processes[i].faults) << i;
  }
}

TEST(HierarchyLadderTest, ElapsedIsMonotoneInTheBottomPenalty) {
  auto cp = CompiledProgram::FromSource(FindWorkload("TQL").source);
  ASSERT_TRUE(cp.ok());
  auto full = cp.value().shared_trace();
  auto refs = cp.value().shared_references();
  SweepScheduler sched;  // serial
  std::vector<HierarchyLadderCell> cells = sched.HierarchyLadder(
      full, refs, HierarchySpec::Legacy(2000), {"lru:16"}, {2000, 200, 20});
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_GT(cells[0].result.elapsed, cells[1].result.elapsed);
  EXPECT_GT(cells[1].result.elapsed, cells[2].result.elapsed);
  // Fault counts are a RAM-policy property: penalty-independent.
  EXPECT_EQ(cells[0].result.faults, cells[1].result.faults);
  EXPECT_EQ(cells[1].result.faults, cells[2].result.faults);
}

}  // namespace
}  // namespace cdmm
