#include "src/vm/damped_ws.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"
#include "src/vm/working_set.h"

namespace cdmm {
namespace {

Trace MakeTrace(const std::vector<PageId>& pages) {
  Trace t("test");
  uint32_t v = 0;
  for (PageId p : pages) {
    v = std::max(v, p + 1);
  }
  t.set_virtual_pages(v);
  for (PageId p : pages) {
    t.AddRef(p);
  }
  return t;
}

// A trace with a sharp inter-locality transition: phase A cycles pages
// 0..3, phase B cycles 10..13, then back to A.
std::vector<PageId> TransitionTrace(int phase_len) {
  std::vector<PageId> seq;
  for (int round = 0; round < 6; ++round) {
    PageId base = round % 2 == 0 ? 0 : 10;
    for (int i = 0; i < phase_len; ++i) {
      seq.push_back(base + static_cast<PageId>(i % 4));
    }
  }
  return seq;
}

TEST(DampedWsTest, NeverFaultsMoreThanPureWs) {
  // Damping only delays expulsion, so residency is a superset of WS's:
  // faults cannot increase.
  SplitMix64 rng(31);
  std::vector<PageId> seq;
  for (int i = 0; i < 4000; ++i) {
    seq.push_back(static_cast<PageId>(rng.NextBelow(24)));
  }
  Trace t = MakeTrace(seq);
  for (uint64_t tau : {50u, 200u, 1000u}) {
    SimResult ws = SimulateWs(t, tau);
    SimResult dws = SimulateDampedWs(t, {.tau = tau, .release_interval = 64});
    EXPECT_LE(dws.faults, ws.faults) << "tau=" << tau;
  }
}

TEST(DampedWsTest, HoldsMoreMemoryThanPureWs) {
  Trace t = MakeTrace(TransitionTrace(300));
  SimResult ws = SimulateWs(t, 100);
  SimResult dws = SimulateDampedWs(t, {.tau = 100, .release_interval = 128});
  EXPECT_GE(dws.mean_memory, ws.mean_memory);
}

TEST(DampedWsTest, SavesTransitionFaults) {
  // At a phase flip WS expels the old locality and refaults it on return;
  // the damped variant keeps it around long enough to be revived.
  Trace t = MakeTrace(TransitionTrace(120));
  SimResult ws = SimulateWs(t, 60);
  SimResult dws = SimulateDampedWs(t, {.tau = 60, .release_interval = 1000});
  EXPECT_LT(dws.faults, ws.faults);
}

TEST(DampedWsTest, FastReleaseDegeneratesTowardWs) {
  Trace t = MakeTrace(TransitionTrace(200));
  SimResult ws = SimulateWs(t, 80);
  SimResult dws = SimulateDampedWs(t, {.tau = 80, .release_interval = 1});
  // With release every reference, DWS still releases at most one page per
  // tick, but for this slow-changing trace that matches WS closely.
  EXPECT_NEAR(static_cast<double>(dws.faults), static_cast<double>(ws.faults),
              static_cast<double>(ws.faults) * 0.25 + 4.0);
}

TEST(DampedWsTest, RevivedPagesAreNotReleased) {
  // A page that expires but is referenced again before its damped release
  // must stay resident (no fault on that reference, since expiry does not
  // remove it).
  std::vector<PageId> seq;
  seq.push_back(5);
  for (int i = 0; i < 30; ++i) {
    seq.push_back(0);  // page 5 expires from the tau=8 window
  }
  seq.push_back(5);  // revived before any release opportunity drains it
  Trace t = MakeTrace(seq);
  SimResult r = SimulateDampedWs(t, {.tau = 8, .release_interval = 1000});
  EXPECT_EQ(r.faults, 2u);  // colds only
}

TEST(DampedWsTest, MetricsConsistent) {
  Trace t = MakeTrace(TransitionTrace(100));
  SimResult r = SimulateDampedWs(t, {.tau = 50, .release_interval = 32});
  EXPECT_NEAR(r.space_time,
              r.mean_memory * static_cast<double>(r.references) +
                  static_cast<double>(r.faults) * 2000.0,
              1.0);
  EXPECT_EQ(r.elapsed, r.references + r.faults * 2000u);
}

}  // namespace
}  // namespace cdmm
