#include "src/vm/pff.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace cdmm {
namespace {

Trace MakeTrace(const std::vector<PageId>& pages) {
  Trace t("test");
  uint32_t v = 0;
  for (PageId p : pages) {
    v = std::max(v, p + 1);
  }
  t.set_virtual_pages(v);
  for (PageId p : pages) {
    t.AddRef(p);
  }
  return t;
}

TEST(PffTest, GrowsDuringFaultBursts) {
  // Faults closer together than T only grow the resident set.
  Trace t = MakeTrace({0, 1, 2, 3, 4});
  SimResult r = SimulatePff(t, 100);
  EXPECT_EQ(r.faults, 5u);
  EXPECT_EQ(r.max_resident, 5u);
}

TEST(PffTest, ShrinksAfterLongFaultFreeInterval) {
  // Pages 0..3 loaded, then a long run on page 0 only; the next fault (far
  // beyond T) discards everything unreferenced since the previous fault.
  std::vector<PageId> seq = {0, 1, 2, 3};
  for (int i = 0; i < 50; ++i) {
    seq.push_back(0);
  }
  seq.push_back(4);  // distant fault triggers the shrink
  seq.push_back(1);  // 1 was discarded -> refaults
  Trace t = MakeTrace(seq);
  SimResult r = SimulatePff(t, 10);
  // Faults: 0,1,2,3 cold, 4, then 1 again = 6.
  EXPECT_EQ(r.faults, 6u);
}

TEST(PffTest, KeepsPagesReferencedSinceLastFault) {
  std::vector<PageId> seq = {0, 1};
  for (int i = 0; i < 50; ++i) {
    seq.push_back(0);
    seq.push_back(1);
  }
  seq.push_back(2);  // shrink happens, but 0 and 1 were just used
  seq.push_back(0);
  seq.push_back(1);
  Trace t = MakeTrace(seq);
  SimResult r = SimulatePff(t, 10);
  EXPECT_EQ(r.faults, 3u);  // only the colds
}

TEST(PffTest, LargeThresholdNeverShrinks) {
  SplitMix64 rng(5);
  std::vector<PageId> seq;
  for (int i = 0; i < 1000; ++i) {
    seq.push_back(static_cast<PageId>(rng.NextBelow(12)));
  }
  Trace t = MakeTrace(seq);
  SimResult r = SimulatePff(t, 1u << 30);
  EXPECT_EQ(r.faults, 12u);  // cold only
  EXPECT_EQ(r.max_resident, 12u);
}

TEST(PffTest, MeanMemoryBetweenOneAndMax) {
  SplitMix64 rng(9);
  std::vector<PageId> seq;
  for (int i = 0; i < 2000; ++i) {
    seq.push_back(static_cast<PageId>(rng.NextBelow(20)));
  }
  Trace t = MakeTrace(seq);
  SimResult r = SimulatePff(t, 500);
  EXPECT_GE(r.mean_memory, 1.0);
  EXPECT_LE(r.mean_memory, 20.0);
  EXPECT_DOUBLE_EQ(r.space_time, r.mean_memory * static_cast<double>(r.references) +
                                     static_cast<double>(r.faults) * 2000.0);
}

}  // namespace
}  // namespace cdmm
