#include "src/vm/cd_policy.h"

#include <gtest/gtest.h>

namespace cdmm {
namespace {

// Builder for hand-crafted directive-bearing traces.
class TraceBuilder {
 public:
  explicit TraceBuilder(uint32_t virtual_pages) {
    trace_.set_name("hand");
    trace_.set_virtual_pages(virtual_pages);
  }

  TraceBuilder& Refs(std::initializer_list<PageId> pages) {
    for (PageId p : pages) {
      trace_.AddRef(p);
    }
    return *this;
  }

  TraceBuilder& RefLoop(std::initializer_list<PageId> pages, int times) {
    for (int i = 0; i < times; ++i) {
      Refs(pages);
    }
    return *this;
  }

  TraceBuilder& Allocate(std::initializer_list<AllocateRequest> chain) {
    DirectiveRecord d;
    d.kind = DirectiveRecord::Kind::kAllocate;
    d.requests.assign(chain.begin(), chain.end());
    trace_.AddDirective(std::move(d));
    return *this;
  }

  TraceBuilder& Lock(uint16_t pj, std::initializer_list<PageId> pages) {
    DirectiveRecord d;
    d.kind = DirectiveRecord::Kind::kLock;
    d.lock_priority = pj;
    d.pages.assign(pages.begin(), pages.end());
    trace_.AddDirective(std::move(d));
    return *this;
  }

  TraceBuilder& Unlock(std::initializer_list<PageId> pages) {
    DirectiveRecord d;
    d.kind = DirectiveRecord::Kind::kUnlock;
    d.pages.assign(pages.begin(), pages.end());
    trace_.AddDirective(std::move(d));
    return *this;
  }

  Trace Build() { return std::move(trace_); }

 private:
  Trace trace_;
};

AllocateRequest Req(uint16_t pi, uint32_t pages) { return AllocateRequest{pi, pages}; }

TEST(SelectCdRequestTest, AllModes) {
  std::vector<AllocateRequest> chain = {Req(3, 100), Req(2, 10), Req(1, 2)};
  EXPECT_EQ(SelectCdRequest(chain, DirectiveSelection::kOutermost, 0, 0), 0);
  EXPECT_EQ(SelectCdRequest(chain, DirectiveSelection::kInnermost, 0, 0), 2);
  EXPECT_EQ(SelectCdRequest(chain, DirectiveSelection::kLevelCap, 2, 0), 1);
  EXPECT_EQ(SelectCdRequest(chain, DirectiveSelection::kLevelCap, 1, 0), 2);
  // A cap below every priority falls back to the innermost request.
  EXPECT_EQ(SelectCdRequest(chain, DirectiveSelection::kLevelCap, 0, 0), 2);
  EXPECT_EQ(SelectCdRequest(chain, DirectiveSelection::kAvailability, 0, 200), 0);
  EXPECT_EQ(SelectCdRequest(chain, DirectiveSelection::kAvailability, 0, 50), 1);
  EXPECT_EQ(SelectCdRequest(chain, DirectiveSelection::kAvailability, 0, 5), 2);
  EXPECT_EQ(SelectCdRequest(chain, DirectiveSelection::kAvailability, 0, 1), -1);
}

TEST(CdPolicyTest, AllocateGrantBoundsResidency) {
  // Grant 2 pages, then cycle over 3: every reference faults; with grant 3
  // only the colds fault.
  Trace small = TraceBuilder(8).Allocate({Req(1, 2)}).RefLoop({0, 1, 2}, 10).Build();
  CdOptions options;
  options.selection = DirectiveSelection::kInnermost;
  options.initial_allocation = 1;
  SimResult r_small = SimulateCd(small, options);
  EXPECT_EQ(r_small.faults, 30u);

  Trace big = TraceBuilder(8).Allocate({Req(1, 3)}).RefLoop({0, 1, 2}, 10).Build();
  SimResult r_big = SimulateCd(big, options);
  EXPECT_EQ(r_big.faults, 3u);
}

TEST(CdPolicyTest, SelectionPicksDifferentGrants) {
  auto make = [] {
    return TraceBuilder(16).Allocate({Req(2, 6), Req(1, 2)}).RefLoop({0, 1, 2, 3, 4, 5}, 8).Build();
  };
  CdOptions outer;
  outer.selection = DirectiveSelection::kOutermost;
  CdOptions inner;
  inner.selection = DirectiveSelection::kInnermost;
  Trace t1 = make();
  Trace t2 = make();
  EXPECT_EQ(SimulateCd(t1, outer).faults, 6u);        // grant 6 holds the cycle
  EXPECT_EQ(SimulateCd(t2, inner).faults, 6u * 8u);   // grant 2 thrashes
}

TEST(CdPolicyTest, ShrinkOnSmallerGrantEvicts) {
  Trace t = TraceBuilder(8)
                .Allocate({Req(2, 4)})
                .Refs({0, 1, 2, 3})
                .Allocate({Req(2, 4), Req(1, 1)})
                .Refs({3})  // still resident (most recent survivor)
                .Refs({0})  // evicted by the shrink -> faults
                .Build();
  CdOptions options;
  options.selection = DirectiveSelection::kInnermost;
  SimResult r = SimulateCd(t, options);
  EXPECT_EQ(r.faults, 5u);
  EXPECT_EQ(r.allocation_shrinks, 1u);
}

TEST(CdPolicyTest, LocksPinPagesAcrossInnerPhases) {
  // Page 0 is locked before a phase that cycles pages 1..3 in a 1-page
  // grant; 0 must still be resident afterwards.
  Trace with_locks = TraceBuilder(8)
                         .Allocate({Req(2, 1)})
                         .Refs({0})
                         .Lock(2, {0})
                         .RefLoop({1, 2, 3}, 5)
                         .Refs({0})  // hit: pinned
                         .Unlock({0})
                         .Build();
  CdOptions options;
  options.selection = DirectiveSelection::kInnermost;
  SimResult r = SimulateCd(with_locks, options);
  EXPECT_EQ(r.faults, 1u + 15u);

  Trace no_locks = TraceBuilder(8)
                       .Allocate({Req(2, 1)})
                       .Refs({0})
                       .Lock(2, {0})
                       .RefLoop({1, 2, 3}, 5)
                       .Refs({0})
                       .Unlock({0})
                       .Build();
  options.honor_locks = false;
  SimResult r2 = SimulateCd(no_locks, options);
  EXPECT_EQ(r2.faults, 1u + 15u + 1u);  // 0 refaults without the pin
}

TEST(CdPolicyTest, HeldMemoryIncludesLockedPages) {
  Trace t = TraceBuilder(8)
                .Allocate({Req(1, 2)})
                .Refs({0})
                .Lock(1, {0})
                .RefLoop({1, 2}, 50)
                .Build();
  CdOptions options;
  options.selection = DirectiveSelection::kInnermost;
  SimResult r = SimulateCd(t, options);
  // Held = grant 2 + 1 locked page for most of the run.
  EXPECT_GT(r.mean_memory, 2.5);
  EXPECT_LE(r.mean_memory, 3.0);
}

TEST(CdPolicyTest, AvailabilityModeFallsBackDownTheChain) {
  Trace t = TraceBuilder(64)
                .Allocate({Req(3, 50), Req(2, 10), Req(1, 4)})
                .RefLoop({0, 1, 2, 3}, 10)
                .Build();
  CdOptions options;
  options.selection = DirectiveSelection::kAvailability;
  options.available_frames = 12;  // only the (2,10) request fits
  SimResult r = SimulateCd(t, options);
  EXPECT_EQ(r.faults, 4u);  // grant 10 >= working set 4
  EXPECT_LE(r.max_resident, 12u);
}

TEST(CdPolicyTest, AvailabilityUngrantablePi1CountsSwapRequest) {
  Trace t = TraceBuilder(64).Allocate({Req(1, 40)}).RefLoop({0, 1, 2}, 5).Build();
  CdOptions options;
  options.selection = DirectiveSelection::kAvailability;
  options.available_frames = 8;
  CdRunInfo info;
  SimResult r = SimulateCd(t, options, &info);
  EXPECT_EQ(info.swap_requests, 1u);
  EXPECT_LE(r.max_resident, 8u);
}

TEST(CdPolicyTest, AvailabilityUngrantablePi2Continues) {
  Trace t = TraceBuilder(64)
                .Allocate({Req(1, 4)})
                .Refs({0, 1, 2, 3})
                .Allocate({Req(2, 40)})  // cannot be granted; PI 2 -> continue
                .Refs({0, 1, 2, 3})      // old grant still in force: all hits
                .Build();
  CdOptions options;
  options.selection = DirectiveSelection::kAvailability;
  options.available_frames = 8;
  CdRunInfo info;
  SimResult r = SimulateCd(t, options, &info);
  EXPECT_EQ(r.faults, 4u);
  EXPECT_EQ(info.swap_requests, 0u);
}

TEST(CdPolicyTest, PhysicalCapForcesSoftLockRelease) {
  // Pinning three resident pages under a two-frame physical cap forces the
  // OS to soft-release a lock (the paper's "entitled to release the locked
  // pages without having to wait for the UNLOCK directive").
  Trace t = TraceBuilder(16)
                .Allocate({Req(1, 3)})
                .Refs({0, 1, 2})
                .Lock(3, {0, 1, 2})
                .Refs({0, 1})
                .Build();
  CdOptions options;
  options.selection = DirectiveSelection::kInnermost;
  options.available_frames = 2;
  SimResult r = SimulateCd(t, options);
  EXPECT_GE(r.lock_releases, 1u);
}

TEST(CdPolicyTest, MetricsFollowStFormula) {
  Trace t = TraceBuilder(8).Allocate({Req(1, 2)}).RefLoop({0, 1}, 10).Build();
  CdOptions options;
  options.selection = DirectiveSelection::kInnermost;
  options.sim.fault_service_time = 777;
  SimResult r = SimulateCd(t, options);
  EXPECT_EQ(r.references, 20u);
  EXPECT_EQ(r.elapsed, 20u + r.faults * 777u);
  EXPECT_DOUBLE_EQ(r.space_time, r.mean_memory * 20.0 + static_cast<double>(r.faults) * 777.0);
}

TEST(CdPolicyTest, DirectiveFreeTraceRunsAtInitialAllocation) {
  Trace t = TraceBuilder(8).RefLoop({0, 1, 2}, 10).Build();
  CdOptions options;
  options.initial_allocation = 3;
  SimResult r = SimulateCd(t, options);
  EXPECT_EQ(r.faults, 3u);
  EXPECT_EQ(r.directives_processed, 0u);
  EXPECT_DOUBLE_EQ(r.mean_memory, 3.0);
}

TEST(CdPolicyTest, UnlimitedAvailabilityDegeneratesToOutermost) {
  Trace t = TraceBuilder(64).Allocate({Req(2, 20), Req(1, 2)}).RefLoop({0, 1, 2, 3, 4}, 6).Build();
  CdOptions options;
  options.selection = DirectiveSelection::kAvailability;
  options.available_frames = 0;  // unlimited
  SimResult r = SimulateCd(t, options);
  EXPECT_EQ(r.faults, 5u);
  EXPECT_DOUBLE_EQ(r.mean_memory, 20.0);
}

}  // namespace
}  // namespace cdmm
