#include "src/cdmm/validation.h"

#include <gtest/gtest.h>

#include "src/support/str.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

class ValidationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ValidationTest, EstimatesCoverMeasuredLocalities) {
  auto cp = CompiledProgram::FromSource(FindWorkload(GetParam()).source);
  ASSERT_TRUE(cp.ok());
  auto rows = ValidateLocalityEstimates(cp.value());
  ASSERT_FALSE(rows.empty());
  for (const LoopValidation& v : rows) {
    // X must cover the measured minimal no-thrash allocation. The estimator
    // is heuristic (the paper's own procedure was "being developed"); allow
    // a two-page slack for multi-stream straddle coincidences.
    EXPECT_GE(v.estimated_pages + 2, static_cast<int64_t>(v.max_rereferenced))
        << GetParam() << " loop " << v.loop_label;
    // And it must never exceed the distinct pages touched plus the margin —
    // an estimate beyond the touched set would be pure waste.
    EXPECT_LE(v.estimated_pages,
              static_cast<int64_t>(v.max_distinct) + 2 + v.estimated_pages / 4)
        << GetParam() << " loop " << v.loop_label;
    EXPECT_GT(v.executions, 0u);
    EXPECT_GE(v.max_distinct, v.max_rereferenced);
  }
}

TEST_P(ValidationTest, ReportNamesEveryLoop) {
  auto cp = CompiledProgram::FromSource(FindWorkload(GetParam()).source);
  ASSERT_TRUE(cp.ok());
  auto rows = ValidateLocalityEstimates(cp.value());
  std::string report = ValidationReport(GetParam(), rows);
  for (const LoopValidation& v : rows) {
    EXPECT_NE(report.find(StrCat("loop ", v.loop_label)), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNine, ValidationTest,
                         ::testing::Values("MAIN", "FDJAC", "TQL", "FIELD", "INIT", "APPROX",
                                           "HYBRJ", "CONDUCT", "HWSCRT"));

TEST(ValidationUnitTest, SingleLoopMeasuredNeed) {
  // A loop cycling over exactly 3 pages needs 3 frames; a streaming loop
  // needs 1.
  auto cp = CompiledProgram::FromSource(R"(
      PROGRAM P
      PARAMETER (N = 192)
      DIMENSION A(N), B(N)
      DO 20 T = 1, 5
        DO 10 I = 1, N
          A(I) = A(I) * 0.5
   10   CONTINUE
   20 CONTINUE
      B(1) = A(1)
      END
)");
  ASSERT_TRUE(cp.ok());
  auto rows = ValidateLocalityEstimates(cp.value());
  ASSERT_EQ(rows.size(), 2u);
  // Outer loop: A (3 pages) re-swept 5 times -> measured need 3.
  EXPECT_EQ(rows[0].max_rereferenced, 3u);
  EXPECT_EQ(rows[0].max_distinct, 3u);
  EXPECT_EQ(rows[0].executions, 1u);
  // Inner loop: pure stream; within one execution each page is touched in a
  // run of consecutive references only (need 1).
  EXPECT_EQ(rows[1].max_rereferenced, 1u);
  EXPECT_EQ(rows[1].executions, 5u);
}

}  // namespace
}  // namespace cdmm
