#include "src/vm/working_set.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace cdmm {
namespace {

Trace MakeTrace(const std::vector<PageId>& pages) {
  Trace t("test");
  uint32_t v = 0;
  for (PageId p : pages) {
    v = std::max(v, p + 1);
  }
  t.set_virtual_pages(v);
  for (PageId p : pages) {
    t.AddRef(p);
  }
  return t;
}

TEST(WsTest, WindowOneFaultsOnEveryPageChange) {
  Trace t = MakeTrace({0, 0, 1, 1, 0, 0});
  SimResult r = SimulateWs(t, 1);
  // Faults at positions 1, 3, 5 (page changes) plus the first cold touch.
  EXPECT_EQ(r.faults, 3u);
}

TEST(WsTest, LargeWindowOnlyColdFaults) {
  Trace t = MakeTrace({0, 1, 2, 0, 1, 2, 3, 0, 1});
  SimResult r = SimulateWs(t, 1000);
  EXPECT_EQ(r.faults, 4u);
  EXPECT_EQ(r.max_resident, 4u);
}

TEST(WsTest, PageExpiresAfterTau) {
  // Page 0 referenced at t=1, re-referenced at t=5 with tau=3: expired
  // (last_ref 1 < 5-3), so it faults again.
  Trace t = MakeTrace({0, 1, 2, 3, 0});
  SimResult r = SimulateWs(t, 3);
  EXPECT_EQ(r.faults, 5u);
}

TEST(WsTest, PageSurvivesWithinTau) {
  // Page 0 re-referenced at distance exactly tau: still in the window.
  Trace t = MakeTrace({0, 1, 2, 0});
  SimResult r = SimulateWs(t, 3);
  EXPECT_EQ(r.faults, 3u);
}

TEST(WsTest, WorkingSetSizeTracksWindowContents) {
  // After the window slides past a page's last use, MEM shrinks.
  std::vector<PageId> seq(100, 0);
  seq[0] = 1;  // touch page 1 once at the start
  Trace t = MakeTrace(seq);
  SimResult r = SimulateWs(t, 5);
  // Mean is slightly above 1: page 1 leaves the set after 5 references.
  EXPECT_GT(r.mean_memory, 1.0);
  EXPECT_LT(r.mean_memory, 1.2);
  EXPECT_EQ(r.max_resident, 2u);
}

TEST(WsTest, StMatchesFormula) {
  Trace t = MakeTrace({0, 1, 0, 1, 2});
  SimOptions options;
  options.fault_service_time = 100;
  SimResult r = SimulateWs(t, 10, options);
  EXPECT_DOUBLE_EQ(r.space_time,
                   r.mean_memory * static_cast<double>(r.references) +
                       static_cast<double>(r.faults) * 100.0);
}

TEST(WsTest, FaultsNonIncreasingInTau) {
  SplitMix64 rng(11);
  std::vector<PageId> seq;
  for (int i = 0; i < 5000; ++i) {
    seq.push_back(rng.NextDouble() < 0.8 ? static_cast<PageId>(rng.NextBelow(4))
                                         : static_cast<PageId>(rng.NextBelow(50)));
  }
  Trace t = MakeTrace(seq);
  uint64_t prev = ~0ull;
  for (uint64_t tau : {1u, 2u, 4u, 8u, 16u, 64u, 256u, 1024u, 4096u}) {
    uint64_t f = SimulateWs(t, tau).faults;
    EXPECT_LE(f, prev) << "tau=" << tau;
    prev = f;
  }
}

TEST(WsTest, MeanMemoryNonDecreasingInTau) {
  SplitMix64 rng(13);
  std::vector<PageId> seq;
  for (int i = 0; i < 5000; ++i) {
    seq.push_back(static_cast<PageId>(rng.NextBelow(30)));
  }
  Trace t = MakeTrace(seq);
  double prev = 0.0;
  for (uint64_t tau : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    double mem = SimulateWs(t, tau).mean_memory;
    EXPECT_GE(mem, prev) << "tau=" << tau;
    prev = mem;
  }
}

TEST(SampledWsTest, BehavesLikeWsAtItsSampleGranularity) {
  SplitMix64 rng(17);
  std::vector<PageId> seq;
  for (int i = 0; i < 3000; ++i) {
    seq.push_back(static_cast<PageId>(rng.NextBelow(20)));
  }
  Trace t = MakeTrace(seq);
  SimResult ws = SimulateWs(t, 500);
  SimResult sws = SimulateSampledWs(t, {.sample_interval = 500, .window_samples = 1});
  // The sampled policy only trims at sample instants, so it holds at least
  // the pure WS's pages and faults no more than WS at the same window.
  EXPECT_LE(sws.faults, ws.faults);
  EXPECT_GE(sws.mean_memory, ws.mean_memory * 0.8);
}

TEST(SampledWsTest, TrimsUnusedPagesAtSamples) {
  // Page 1 is touched once; after two sample intervals it must be gone.
  std::vector<PageId> seq;
  seq.push_back(1);
  for (int i = 0; i < 50; ++i) {
    seq.push_back(0);
  }
  Trace t = MakeTrace(seq);
  SimResult r = SimulateSampledWs(t, {.sample_interval = 10, .window_samples = 1});
  EXPECT_EQ(r.max_resident, 2u);
  EXPECT_LT(r.mean_memory, 1.5);
}

TEST(SampledWsTest, LongerHistoryKeepsPagesLonger) {
  std::vector<PageId> seq;
  for (int round = 0; round < 20; ++round) {
    seq.push_back(5);  // page 5 touched once per round
    for (int i = 0; i < 30; ++i) {
      seq.push_back(0);
    }
  }
  Trace t = MakeTrace(seq);
  SimResult short_hist = SimulateSampledWs(t, {.sample_interval = 10, .window_samples = 1});
  SimResult long_hist = SimulateSampledWs(t, {.sample_interval = 10, .window_samples = 4});
  EXPECT_LE(long_hist.faults, short_hist.faults);
  EXPECT_GE(long_hist.mean_memory, short_hist.mean_memory);
}

TEST(VswsTest, SamplesEarlyUnderFaultPressure) {
  // A fault burst should trigger an early sample (after min_interval), so
  // VSWS trims sooner than a fixed max_interval sampler.
  SplitMix64 rng(23);
  std::vector<PageId> seq;
  for (int i = 0; i < 4000; ++i) {
    seq.push_back(i % 800 < 100 ? static_cast<PageId>(rng.NextBelow(40))
                                : static_cast<PageId>(rng.NextBelow(3)));
  }
  Trace t = MakeTrace(seq);
  SimResult vsws = SimulateVsws(t, {.min_interval = 50, .max_interval = 2000,
                                    .fault_threshold = 5});
  SimResult sws = SimulateSampledWs(t, {.sample_interval = 2000, .window_samples = 1});
  EXPECT_LT(vsws.mean_memory, sws.mean_memory);
}

TEST(WsSweepTest, SweepPointsMatchSingleRuns) {
  SplitMix64 rng(29);
  std::vector<PageId> seq;
  for (int i = 0; i < 2000; ++i) {
    seq.push_back(static_cast<PageId>(rng.NextBelow(15)));
  }
  Trace t = MakeTrace(seq);
  std::vector<uint64_t> taus = {1, 10, 100, 1000};
  auto sweep = WsSweep(t, taus);
  ASSERT_EQ(sweep.size(), taus.size());
  for (size_t i = 0; i < taus.size(); ++i) {
    SimResult direct = SimulateWs(t, taus[i]);
    EXPECT_EQ(sweep[i].faults, direct.faults);
    EXPECT_DOUBLE_EQ(sweep[i].mean_memory, direct.mean_memory);
  }
}

TEST(TauGridTest, CoversRangeAndIsSorted) {
  auto grid = DefaultTauGrid(100000, 8);
  ASSERT_GE(grid.size(), 10u);
  EXPECT_EQ(grid.front(), 1u);
  EXPECT_EQ(grid.back(), 100000u);
  for (size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LT(grid[i - 1], grid[i]);
  }
}

TEST(TauGridTest, TinyMax) {
  auto grid = DefaultTauGrid(1);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid[0], 1u);
}

}  // namespace
}  // namespace cdmm
