// Unit tests for the structured-diagnostics engine: accumulation, severity
// counts, deterministic source ordering, and the text/JSON renderers.
#include "src/lint/diagnostics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cdmm {
namespace {

SourceLocation Loc(int line, int column) {
  SourceLocation loc;
  loc.line = line;
  loc.column = column;
  return loc;
}

TEST(DiagnosticsTest, ReportAccumulatesAndCounts) {
  DiagnosticEngine engine;
  engine.Report(Severity::kError, "S001", "sema", Loc(3, 7), "duplicate array");
  engine.Report(Severity::kWarning, "H001", "hygiene", Loc(2, 1), "unused array");
  engine.Report(Severity::kWarning, "H002", "hygiene", Loc(5, 9), "shadowed index");
  EXPECT_EQ(engine.diagnostics().size(), 3u);
  EXPECT_EQ(engine.error_count(), 1u);
  EXPECT_EQ(engine.warning_count(), 2u);
  EXPECT_EQ(engine.count(Severity::kNote), 0u);
  EXPECT_FALSE(engine.empty());
}

TEST(DiagnosticsTest, ReportReturnsReferenceForFixit) {
  DiagnosticEngine engine;
  engine.Report(Severity::kError, "B002", "subscript-bounds", Loc(4, 12), "out of bounds").fixit =
      "widen DIMENSION A";
  EXPECT_EQ(engine.diagnostics().front().fixit, "widen DIMENSION A");
}

TEST(DiagnosticsTest, SortBySourceOrdersByLineThenColumn) {
  DiagnosticEngine engine;
  engine.Report(Severity::kError, "Z", "p", Loc(9, 2), "third");
  engine.Report(Severity::kError, "Z", "p", Loc(4, 20), "second");
  engine.Report(Severity::kError, "Z", "p", Loc(4, 3), "first");
  engine.SortBySource();
  const auto& d = engine.diagnostics();
  EXPECT_EQ(d[0].message, "first");
  EXPECT_EQ(d[1].message, "second");
  EXPECT_EQ(d[2].message, "third");
}

TEST(DiagnosticsTest, SortBySourceIsStableOnTies) {
  // Two diagnostics at the same span keep their discovery order so renderings
  // do not depend on pass scheduling.
  DiagnosticEngine engine;
  engine.Report(Severity::kError, "B001", "subscript-bounds", Loc(5, 18), "below lower bound");
  engine.Report(Severity::kError, "B002", "subscript-bounds", Loc(5, 18), "exceeds extent");
  engine.SortBySource();
  EXPECT_EQ(engine.diagnostics()[0].code, "B001");
  EXPECT_EQ(engine.diagnostics()[1].code, "B002");
}

TEST(DiagnosticsTest, SortIsDeterministicForDependencePassCodes) {
  // The dependence-powered passes (P001-P003, R001-R002) report from a
  // different engine phase than the structural passes; their diagnostics must
  // land in one canonical order regardless of the order the passes ran in.
  struct Entry {
    const char* code;
    const char* pass;
    int line;
    int column;
  };
  const Entry entries[] = {
      {"B001", "subscript-bounds", 5, 9},   {"P001", "parallel-independence", 4, 7},
      {"R002", "access-range", 4, 7},       {"C002", "locality-consistency", 5, 9},
      {"P003", "parallel-independence", 8, 7}, {"R001", "access-range", 8, 7},
      {"H001", "hygiene", 3, 17},           {"D001", "directive-verifier", 4, 7},
      {"X001", "dead-directive", 8, 7},     {"P002", "parallel-independence", 4, 7},
  };
  auto run = [&](bool reversed) {
    DiagnosticEngine engine;
    size_t n = sizeof(entries) / sizeof(entries[0]);
    for (size_t i = 0; i < n; ++i) {
      const Entry& e = entries[reversed ? n - 1 - i : i];
      engine.Report(Severity::kWarning, e.code, e.pass, Loc(e.line, e.column), "m");
    }
    engine.SortBySource();
    std::vector<std::string> codes;
    for (const Diagnostic& d : engine.diagnostics()) {
      codes.push_back(d.code);
    }
    return codes;
  };
  std::vector<std::string> forward = run(false);
  EXPECT_EQ(forward, run(true));
  // Same span sorts by code, so P/R codes interleave deterministically with
  // the existing families: at 4:7 D001 < P001 < P002 < R002.
  EXPECT_EQ(forward, (std::vector<std::string>{"H001", "D001", "P001", "P002", "R002", "B001",
                                               "C002", "P003", "R001", "X001"}));
}

TEST(DiagnosticsTest, ToStringIncludesSpanSeverityPassAndCode) {
  Diagnostic d;
  d.code = "S003";
  d.severity = Severity::kError;
  d.pass = "sema";
  d.message = "reference to undeclared array C";
  d.location = Loc(5, 16);
  EXPECT_EQ(d.ToString(), "5:16: error: reference to undeclared array C [sema/S003]");
}

TEST(DiagnosticsTest, ToErrorKeepsMessageAndLocation) {
  Diagnostic d;
  d.message = "boom";
  d.location = Loc(7, 3);
  Error e = d.ToError();
  EXPECT_EQ(e.message, "boom");
  EXPECT_EQ(e.location.line, 7);
  EXPECT_EQ(e.location.column, 3);
}

TEST(DiagnosticsTest, RenderTextPrefixesSourceNameAndAppendsFixit) {
  Diagnostic d;
  d.code = "H001";
  d.severity = Severity::kWarning;
  d.pass = "hygiene";
  d.message = "array C is never referenced";
  d.location = Loc(3, 29);
  d.fixit = "remove C from its DIMENSION statement";
  std::string text = RenderText({d}, "prog.f");
  EXPECT_NE(text.find("prog.f:3:29: warning: array C is never referenced [hygiene/H001]"),
            std::string::npos);
  EXPECT_NE(text.find("fix-it: remove C from its DIMENSION statement"), std::string::npos);
}

TEST(DiagnosticsTest, RenderJsonEmitsAllFieldsAndOmitsEmptyFixit) {
  Diagnostic d;
  d.code = "D001";
  d.severity = Severity::kError;
  d.pass = "directive-verifier";
  d.message = "LOCK without covering ALLOCATE";
  d.location = Loc(6, 9);
  std::string json = RenderJson({d}, "prog.f");
  EXPECT_NE(json.find("\"file\": \"prog.f\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"column\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\": \"directive-verifier\""), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"D001\""), std::string::npos);
  EXPECT_EQ(json.find("fixit"), std::string::npos);
}

TEST(DiagnosticsTest, RenderJsonEscapesSpecialCharacters) {
  Diagnostic d;
  d.code = "F001";
  d.pass = "parse";
  d.message = "bad token \"X\\Y\"\n\ttrailing";
  std::string json = RenderJson({d}, "a\"b.f");
  EXPECT_NE(json.find("\"file\": \"a\\\"b.f\""), std::string::npos);
  EXPECT_NE(json.find("bad token \\\"X\\\\Y\\\"\\n\\ttrailing"), std::string::npos);
}

TEST(DiagnosticsTest, RenderJsonEmptyListIsEmptyArray) {
  EXPECT_EQ(RenderJson({}, "prog.f"), "[]\n");
}

TEST(DiagnosticsTest, SummaryLineCountsBySeverity) {
  std::vector<Diagnostic> diags(3);
  diags[0].severity = Severity::kError;
  diags[1].severity = Severity::kWarning;
  diags[2].severity = Severity::kWarning;
  std::string summary = SummaryLine(diags);
  EXPECT_NE(summary.find("1 error"), std::string::npos);
  EXPECT_NE(summary.find("2 warning"), std::string::npos);
  EXPECT_EQ(SummaryLine({}), "");
}

TEST(DiagnosticsTest, TakeMovesOutAndLeavesEngineEmpty) {
  DiagnosticEngine engine;
  engine.Report(Severity::kNote, "N", "p", Loc(1, 1), "note");
  std::vector<Diagnostic> taken = engine.Take();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(engine.empty());
}

}  // namespace
}  // namespace cdmm
