// Tests for the deterministic fault injector: purity (same (seed, site,
// stream, index) always gives the same decision), independence from call
// order, disabled-equals-nominal, and the shape guarantees each injection
// point promises its consumers.
#include "src/robust/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/robust/backoff.h"
#include "src/vm/sim_result.h"

namespace cdmm {
namespace {

FaultInjectionConfig FullConfig(uint64_t seed) {
  FaultInjectionConfig config;
  config.seed = seed;
  config.swap_failure_rate = 0.3;
  config.pressure_rate = 0.5;
  config.stall_rate = 0.2;
  config.poison_rate = 0.2;
  config.migration_failure_rate = 0.3;
  return config;
}

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_EQ(injector.FaultServiceTime(0, 0, 2000), 2000u);
  EXPECT_EQ(injector.TotalFaultServiceTime(0, 10, 2000), 20000u);
  EXPECT_FALSE(injector.SwapAttemptFails(0));
  EXPECT_EQ(injector.PhantomFrames(12345, 128), 0u);
  EXPECT_FALSE(injector.StallsSweepItem(3));
  EXPECT_FALSE(injector.PoisonsSweepItem(3));
}

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfTheirArguments) {
  FaultInjector a(FullConfig(77));
  FaultInjector b(FullConfig(77));
  // Interrogate `a` in a scrambled order relative to `b`: every answer must
  // match, because no call mutates state.
  std::vector<uint64_t> forward, backward;
  for (uint64_t i = 0; i < 200; ++i) {
    forward.push_back(a.FaultServiceTime(1, i, 2000));
  }
  for (uint64_t i = 200; i-- > 0;) {
    backward.push_back(b.FaultServiceTime(1, i, 2000));
  }
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(forward[i], backward[199 - i]) << i;
  }
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.SwapAttemptFails(i), b.SwapAttemptFails(i)) << i;
    EXPECT_EQ(a.StallsSweepItem(i), b.StallsSweepItem(i)) << i;
    EXPECT_EQ(a.PoisonsSweepItem(i), b.PoisonsSweepItem(i)) << i;
    EXPECT_EQ(a.PhantomFrames(i * 1000, 128), b.PhantomFrames(i * 1000, 128)) << i;
  }
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentSchedules) {
  FaultInjector a(FullConfig(1));
  FaultInjector b(FullConfig(2));
  int differing = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    differing += a.FaultServiceTime(0, i, 2000) != b.FaultServiceTime(0, i, 2000);
  }
  EXPECT_GT(differing, 50);
}

TEST(FaultInjectorTest, StreamsAreIndependent) {
  FaultInjector injector(FullConfig(9));
  int differing = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    differing += injector.FaultServiceTime(0, i, 2000) != injector.FaultServiceTime(1, i, 2000);
  }
  EXPECT_GT(differing, 50);
}

TEST(FaultInjectorTest, ServiceTimeNeverZeroAndBoundedBelowHeavyTail) {
  FaultInjectionConfig config;
  config.seed = 3;
  config.service_jitter = 1.0;  // factor can reach 0 without the floor
  config.service_tail_rate = 0.1;
  config.service_tail_scale = 16.0;
  FaultInjector injector(config);
  for (uint64_t i = 0; i < 2000; ++i) {
    uint64_t t = injector.FaultServiceTime(0, i, 2000);
    EXPECT_GE(t, 1u);
    EXPECT_LE(t, 2000ull * 2 * 16);  // (1 + jitter) * tail scale
  }
  // Even a base of 1 stays positive.
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_GE(injector.FaultServiceTime(0, i, 1), 1u);
  }
}

TEST(FaultInjectorTest, TotalIsSumOfPerFaultTimes) {
  FaultInjector injector(FullConfig(21));
  uint64_t sum = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    sum += injector.FaultServiceTime(2, i, 2000);
  }
  EXPECT_EQ(injector.TotalFaultServiceTime(2, 50, 2000), sum);
}

TEST(FaultInjectorTest, PhantomFramesRespectTheConfiguredCap) {
  FaultInjectionConfig config;
  config.seed = 13;
  config.pressure_rate = 1.0;
  config.pressure_max_fraction = 0.25;
  FaultInjector injector(config);
  for (uint64_t clock = 0; clock < 40 * config.pressure_epoch;
       clock += config.pressure_epoch / 2) {
    uint32_t frames = injector.PhantomFrames(clock, 128);
    EXPECT_LE(frames, 32u) << clock;  // 25% of 128
  }
}

TEST(FaultInjectorTest, PhantomIsPiecewiseConstantPerEpoch) {
  FaultInjectionConfig config;
  config.seed = 13;
  config.pressure_rate = 1.0;
  FaultInjector injector(config);
  uint64_t epoch = config.pressure_epoch;
  for (uint64_t e = 0; e < 10; ++e) {
    uint32_t at_start = injector.PhantomFrames(e * epoch, 128);
    uint32_t mid = injector.PhantomFrames(e * epoch + epoch / 2, 128);
    uint32_t at_end = injector.PhantomFrames(e * epoch + epoch - 1, 128);
    EXPECT_EQ(at_start, mid);
    EXPECT_EQ(mid, at_end);
    EXPECT_EQ(injector.NextPhantomChange(e * epoch), (e + 1) * epoch);
  }
}

TEST(FaultInjectorTest, AtIntensityZeroIsDisabled) {
  FaultInjectionConfig config = FaultInjectionConfig::AtIntensity(99, 0.0);
  EXPECT_FALSE(config.enabled());
  FaultInjectionConfig live = FaultInjectionConfig::AtIntensity(99, 0.5);
  EXPECT_TRUE(live.enabled());
  EXPECT_EQ(live.seed, 99u);
}

TEST(FaultInjectorTest, AtIntensityClampsAndScalesMonotonically) {
  FaultInjectionConfig low = FaultInjectionConfig::AtIntensity(5, 0.2);
  FaultInjectionConfig high = FaultInjectionConfig::AtIntensity(5, 1.0);
  FaultInjectionConfig over = FaultInjectionConfig::AtIntensity(5, 7.0);  // clamped to 1
  EXPECT_LT(low.swap_failure_rate, high.swap_failure_rate);
  EXPECT_LT(low.pressure_rate, high.pressure_rate);
  EXPECT_LT(low.stall_rate, high.stall_rate);
  EXPECT_EQ(over.swap_failure_rate, high.swap_failure_rate);
  EXPECT_LE(high.swap_failure_rate, 1.0);
  EXPECT_LE(high.pressure_max_fraction, 0.5);
}

TEST(FaultInjectorTest, SimOptionsHelpersMatchInjector) {
  FaultInjector injector(FullConfig(31));
  SimOptions with;
  with.fault_service_time = 1500;
  with.injector = &injector;
  SimOptions without;
  without.fault_service_time = 1500;
  // Null injector: exact legacy arithmetic.
  EXPECT_EQ(FaultServiceCost(without, 7), 1500u);
  EXPECT_EQ(TotalFaultServiceCost(without, 11), 11u * 1500u);
  // Injector attached: defer to its streams.
  EXPECT_EQ(FaultServiceCost(with, 7), injector.FaultServiceTime(0, 7, 1500));
  EXPECT_EQ(TotalFaultServiceCost(with, 11), injector.TotalFaultServiceTime(0, 11, 1500));
}

TEST(FaultInjectorTest, RatesProduceRoughlyProportionalEventCounts) {
  FaultInjectionConfig config;
  config.seed = 101;
  config.stall_rate = 0.25;
  FaultInjector injector(config);
  int stalled = 0;
  for (uint64_t i = 0; i < 4000; ++i) {
    stalled += injector.StallsSweepItem(i);
  }
  // 25% +- generous slack.
  EXPECT_GT(stalled, 4000 / 8);
  EXPECT_LT(stalled, 4000 / 2);
}

TEST(FaultInjectorTest, MigrationDecisionsArePureAndOrderIndependent) {
  FaultInjector a(FullConfig(77));
  FaultInjector b(FullConfig(77));
  // Interrogate `b` backwards first so any hidden state would skew it, then
  // compare pointwise: every decision is a pure function of its arguments.
  std::vector<bool> backward(4000);
  for (uint64_t i = 4000; i-- > 0;) {
    backward[i] = b.MigrationAttemptFails(i);
  }
  for (uint64_t i = 0; i < 4000; ++i) {
    EXPECT_EQ(a.MigrationAttemptFails(i), backward[i]) << i;
  }
}

TEST(FaultInjectorTest, MigrationRateZeroNeverFails) {
  FaultInjectionConfig config;
  config.seed = 9;  // enabled, but migration knob untouched (defaults to 0)
  FaultInjector injector(config);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.MigrationAttemptFails(i));
  }
  FaultInjector off;  // disabled entirely
  EXPECT_FALSE(off.MigrationAttemptFails(0));
}

TEST(FaultInjectorTest, MigrationRateProducesProportionalFailures) {
  FaultInjectionConfig config;
  config.seed = 101;
  config.migration_failure_rate = 0.25;
  FaultInjector injector(config);
  int failed = 0;
  for (uint64_t i = 0; i < 4000; ++i) {
    failed += injector.MigrationAttemptFails(i);
  }
  EXPECT_GT(failed, 4000 / 8);
  EXPECT_LT(failed, 4000 / 2);
}

TEST(FaultInjectorTest, AtIntensityScalesTheMigrationRate) {
  FaultInjectionConfig low = FaultInjectionConfig::AtIntensity(5, 0.2);
  FaultInjectionConfig high = FaultInjectionConfig::AtIntensity(5, 1.0);
  EXPECT_GT(low.migration_failure_rate, 0.0);
  EXPECT_LT(low.migration_failure_rate, high.migration_failure_rate);
  // The migration site is distinct from every pre-existing site, so adding
  // the knob must not perturb the other schedules (bench_faults stability).
  FaultInjector with(high);
  FaultInjectionConfig no_migration = high;
  no_migration.migration_failure_rate = 0.0;
  FaultInjector without(no_migration);
  for (uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(with.FaultServiceTime(0, i, 2000), without.FaultServiceTime(0, i, 2000));
    EXPECT_EQ(with.SwapAttemptFails(i), without.SwapAttemptFails(i));
    EXPECT_EQ(with.StallsSweepItem(i), without.StallsSweepItem(i));
    EXPECT_EQ(with.PoisonsSweepItem(i), without.PoisonsSweepItem(i));
  }
}

// ---- BackoffPolicy: the retry-schedule guarantees cdmm-serve leans on.

TEST(BackoffPolicyTest, UnjitteredScheduleDoublesAndClamps) {
  BackoffPolicy policy;  // base 250, cap 4000, 4 retries, seed 0
  EXPECT_EQ(policy.Delay(0, 0), 250u);
  EXPECT_EQ(policy.Delay(0, 1), 500u);
  EXPECT_EQ(policy.Delay(0, 2), 1000u);
  EXPECT_EQ(policy.Delay(0, 3), 2000u);
  // Budget exhausted: no further wait is ever scheduled.
  EXPECT_EQ(policy.Delay(0, 4), 0u);
  EXPECT_EQ(policy.Delay(0, 100), 0u);
  EXPECT_EQ(policy.Delay(0, -1), 0u);

  policy.cap = 600;
  EXPECT_EQ(policy.Delay(7, 2), 600u);  // clamped, any stream
  EXPECT_EQ(policy.Delay(7, 3), 600u);
}

TEST(BackoffPolicyTest, EveryJitteredDelayIsBoundedByTheCap) {
  for (uint64_t seed : {1ull, 17ull, 0xdeadbeefull}) {
    BackoffPolicy policy;
    policy.seed = seed;
    policy.max_retries = 8;
    policy.cap = 3000;
    for (uint64_t stream = 0; stream < 64; ++stream) {
      uint64_t total = 0;
      for (int attempt = 0; attempt < policy.max_retries; ++attempt) {
        uint64_t delay = policy.Delay(stream, attempt);
        EXPECT_LE(delay, policy.cap) << "seed=" << seed << " stream=" << stream
                                     << " attempt=" << attempt;
        total += delay;
      }
      EXPECT_EQ(policy.TotalDelay(stream), total);
      EXPECT_LE(total, policy.WorstCase());
    }
  }
}

TEST(BackoffPolicyTest, DelaysAreMonotonePerStreamJitterIncluded) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    BackoffPolicy policy;
    policy.seed = seed;
    policy.max_retries = 10;
    policy.cap = 100000;
    for (uint64_t stream = 0; stream < 16; ++stream) {
      uint64_t prev = 0;
      for (int attempt = 0; attempt < policy.max_retries; ++attempt) {
        uint64_t delay = policy.Delay(stream, attempt);
        EXPECT_GE(delay, prev) << "seed=" << seed << " stream=" << stream
                               << " attempt=" << attempt;
        prev = delay;
      }
    }
  }
}

TEST(BackoffPolicyTest, DelaysArePureFunctionsInAnyCallOrder) {
  BackoffPolicy forward;
  forward.seed = 99;
  BackoffPolicy backward = forward;
  std::vector<uint64_t> a;
  std::vector<uint64_t> b(64 * 4);
  for (uint64_t stream = 0; stream < 64; ++stream) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      a.push_back(forward.Delay(stream, attempt));
    }
  }
  for (uint64_t stream = 64; stream-- > 0;) {
    for (int attempt = 4; attempt-- > 0;) {
      b[stream * 4 + static_cast<uint64_t>(attempt)] = backward.Delay(stream, attempt);
    }
  }
  EXPECT_EQ(a, b);
  // And distinct seeds genuinely produce distinct schedules.
  BackoffPolicy other = forward;
  other.seed = 100;
  bool any_difference = false;
  for (uint64_t stream = 0; stream < 64 && !any_difference; ++stream) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      any_difference |= other.Delay(stream, attempt) != a[stream * 4 + attempt];
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(BackoffPolicyTest, FromInjectorConfigMirrorsTheSwapRetryKnobs) {
  FaultInjectionConfig config;
  config.seed = 31;
  config.swap_backoff_base = 125;
  config.max_swap_retries = 5;
  BackoffPolicy policy = BackoffPolicy::FromInjectorConfig(config);
  EXPECT_EQ(policy.base, 125u);
  EXPECT_EQ(policy.max_retries, 5);
  EXPECT_EQ(policy.seed, 31u);
  // Cap = the budget's final unjittered doubling, so jitter never waits
  // longer than the OS swap path would have.
  EXPECT_EQ(policy.cap, 125u << 4);
  EXPECT_EQ(policy.WorstCase(), 5u * (125u << 4));

  // Degenerate knobs stay safe: zero base is bumped, zero budget waits never.
  config.swap_backoff_base = 0;
  config.max_swap_retries = 0;
  BackoffPolicy zero = BackoffPolicy::FromInjectorConfig(config);
  EXPECT_EQ(zero.base, 1u);
  EXPECT_EQ(zero.Delay(0, 0), 0u);
  EXPECT_EQ(zero.WorstCase(), 0u);
}

TEST(BackoffPolicyTest, HugeBaseSaturatesInsteadOfWrapping) {
  // base << attempt would wrap uint64_t from attempt 4 on; the schedule must
  // saturate at the cap, not collapse to a tiny step.
  for (uint64_t seed : {0ull, 9ull}) {
    BackoffPolicy policy;
    policy.base = 1ull << 60;
    policy.cap = 1ull << 62;
    policy.max_retries = 8;
    policy.seed = seed;
    for (uint64_t stream = 0; stream < 4; ++stream) {
      uint64_t prev = 0;
      for (int attempt = 0; attempt < policy.max_retries; ++attempt) {
        uint64_t delay = policy.Delay(stream, attempt);
        EXPECT_LE(delay, policy.cap) << "seed=" << seed << " attempt=" << attempt;
        EXPECT_GE(delay, prev) << "seed=" << seed << " attempt=" << attempt;
        prev = delay;
      }
      EXPECT_EQ(policy.Delay(stream, policy.max_retries - 1), policy.cap);
    }
  }

  // FromInjectorConfig's final-doubling cap saturates the same way, and the
  // jittered add at a saturated cap clamps rather than wrapping past zero.
  FaultInjectionConfig config;
  config.seed = 31;
  config.swap_backoff_base = 1ull << 60;
  config.max_swap_retries = 6;
  BackoffPolicy policy = BackoffPolicy::FromInjectorConfig(config);
  EXPECT_EQ(policy.cap, UINT64_MAX);
  EXPECT_EQ(policy.WorstCase(), UINT64_MAX);
  uint64_t prev = 0;
  for (int attempt = 0; attempt < policy.max_retries; ++attempt) {
    uint64_t delay = policy.Delay(0, attempt);
    EXPECT_GE(delay, prev) << "attempt=" << attempt;
    prev = delay;
  }
  EXPECT_EQ(policy.Delay(0, policy.max_retries - 1), UINT64_MAX);
}

}  // namespace
}  // namespace cdmm
