// Adversarial trace-input tests: hostile, truncated, and corrupted byte
// streams fed to the trace readers must come back as structured Errors —
// never a crash, a CHECK failure, or an attempt to allocate an
// attacker-controlled amount of memory.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/trace/trace_io.h"

namespace cdmm {
namespace {

// Little helper: parse `bytes` as a binary trace and expect a failure whose
// message contains `needle`.
void ExpectBinaryError(const std::string& bytes, const std::string& needle) {
  std::istringstream in(bytes, std::ios::binary);
  Result<Trace> r = ReadTraceBinary(in);
  ASSERT_FALSE(r.ok()) << "bytes parsed unexpectedly";
  EXPECT_NE(r.error().message.find(needle), std::string::npos)
      << "got: " << r.error().message;
}

std::string Varint(uint64_t v) {
  std::string out;
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
  return out;
}

// Valid binary prelude: magic, version 1, empty name, `pages` virtual pages.
std::string Prelude(uint64_t pages = 8) {
  std::string out = "CDMB";
  out.push_back('\x01');
  out += Varint(0);      // name length
  out += Varint(pages);  // virtual pages
  return out;
}

TEST(TraceAdversarialTest, EmptyStreamIsAnError) {
  std::istringstream in("", std::ios::binary);
  EXPECT_FALSE(ReadAnyTrace(in).ok());
  std::istringstream in2("", std::ios::binary);
  EXPECT_FALSE(ReadTraceBinary(in2).ok());
  std::istringstream in3("", std::ios::binary);
  EXPECT_FALSE(ReadTrace(in3).ok());
}

TEST(TraceAdversarialTest, CorruptTextMagic) {
  std::istringstream in("NOTATRACE 1\nR 0\n");
  Result<Trace> r = ReadTrace(in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("bad magic"), std::string::npos);
}

TEST(TraceAdversarialTest, CorruptBinaryMagic) {
  ExpectBinaryError("XXXX\x01", "bad binary trace magic");
}

TEST(TraceAdversarialTest, TruncatedMagic) {
  ExpectBinaryError("CD", "bad binary trace magic");
}

TEST(TraceAdversarialTest, UnsupportedVersion) {
  std::string bytes = "CDMB";
  bytes.push_back('\x7e');
  ExpectBinaryError(bytes, "unsupported binary trace version");
}

TEST(TraceAdversarialTest, NameLengthOverflowingPayloadIsRejectedNotAllocated) {
  // Claims a ~1 EiB name; the reader must refuse before allocating it.
  std::string bytes = "CDMB";
  bytes.push_back('\x01');
  bytes += Varint(1ull << 60);
  ExpectBinaryError(bytes, "malformed trace name");
}

TEST(TraceAdversarialTest, NameLongerThanStream) {
  std::string bytes = "CDMB";
  bytes.push_back('\x01');
  bytes += Varint(1000);  // within the 1MB cap, but the stream ends here
  bytes += "short";
  ExpectBinaryError(bytes, "truncated trace name");
}

TEST(TraceAdversarialTest, MissingPageCount) {
  std::string bytes = "CDMB";
  bytes.push_back('\x01');
  bytes += Varint(0);
  ExpectBinaryError(bytes, "missing virtual page count");
}

TEST(TraceAdversarialTest, MissingTerminatorIsTruncation) {
  std::string bytes = Prelude();
  bytes += Varint((2ull << 3) | 0);  // one valid REF of page 2, then EOF
  ExpectBinaryError(bytes, "truncated binary trace");
}

TEST(TraceAdversarialTest, RefPageOutOfRange) {
  std::string bytes = Prelude(/*pages=*/4);
  bytes += Varint((9ull << 3) | 0);  // page 9 >= 4 declared pages
  ExpectBinaryError(bytes, "out of range");
}

TEST(TraceAdversarialTest, AllocateCountOverflowingPayload) {
  std::string bytes = Prelude();
  bytes += Varint((1ull << 3) | 3);  // ALLOCATE, loop 1
  bytes += Varint(1u << 30);         // absurd request count
  ExpectBinaryError(bytes, "malformed ALLOCATE request count");
}

TEST(TraceAdversarialTest, AllocateZeroRequests) {
  std::string bytes = Prelude();
  bytes += Varint((1ull << 3) | 3);
  bytes += Varint(0);
  ExpectBinaryError(bytes, "malformed ALLOCATE request count");
}

TEST(TraceAdversarialTest, TruncatedAllocateRequests) {
  std::string bytes = Prelude();
  bytes += Varint((1ull << 3) | 3);
  bytes += Varint(3);   // promises 3 requests
  bytes += Varint(1);   // delivers half of one
  ExpectBinaryError(bytes, "truncated ALLOCATE request");
}

TEST(TraceAdversarialTest, LockCountOverflowingPayloadIsBounded) {
  // A LOCK claiming ~16M pages with an empty payload must fail fast on the
  // first missing varint instead of reserving gigabytes.
  std::string bytes = Prelude();
  bytes += Varint((1ull << 3) | 4);  // LOCK, loop 1
  bytes += Varint(2);                // PJ
  bytes += Varint((1u << 24) + 1);   // over the page-count cap
  ExpectBinaryError(bytes, "malformed lock page count");
}

TEST(TraceAdversarialTest, TruncatedLockPageList) {
  std::string bytes = Prelude();
  bytes += Varint((1ull << 3) | 4);
  bytes += Varint(2);    // PJ
  bytes += Varint(100);  // promises 100 pages, stream ends
  ExpectBinaryError(bytes, "truncated lock page list");
}

TEST(TraceAdversarialTest, UnknownTag) {
  std::string bytes = Prelude();
  bytes += Varint((1ull << 3) | 7);  // tag 7 with a non-zero payload
  ExpectBinaryError(bytes, "unknown binary event tag");
}

TEST(TraceAdversarialTest, UnterminatedVarintIsTruncation) {
  std::string bytes = Prelude();
  bytes += std::string(20, '\xff');  // continuation bits forever (shift > 63)
  ExpectBinaryError(bytes, "truncated binary trace");
}

TEST(TraceAdversarialTest, TextTraceWithGarbageLines) {
  std::istringstream in("CDMMTRACE 1\nNAME t\nPAGES 4\nR 0\nZZZ what\n");
  Result<Trace> r = ReadTrace(in);
  ASSERT_FALSE(r.ok());
  // The error carries the 1-based line number of the offending line.
  EXPECT_EQ(r.error().location.line, 5u);
}

TEST(TraceAdversarialTest, ReadAnyTraceSniffsAndStillFailsGracefully) {
  // Starts with 'C' like both magics but is neither.
  std::istringstream in("CDMMZZZ nope");
  EXPECT_FALSE(ReadAnyTrace(in).ok());
  std::string bin = "CDMB";  // binary magic, then nothing
  std::istringstream in2(bin, std::ios::binary);
  EXPECT_FALSE(ReadAnyTrace(in2).ok());
}

TEST(TraceAdversarialTest, RoundTripStillWorksAfterAllThat) {
  Trace t("sanity");
  t.set_virtual_pages(4);
  t.AddRef(0);
  t.AddRef(3);
  std::ostringstream out(std::ios::binary);
  WriteTraceBinary(t, out);
  std::istringstream in(out.str(), std::ios::binary);
  Result<Trace> r = ReadAnyTrace(in);
  ASSERT_TRUE(r.ok()) << r.error().ToString();
  EXPECT_EQ(r.value().reference_count(), 2u);
}

}  // namespace
}  // namespace cdmm
