#include "src/workloads/workloads.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/cdmm/pipeline.h"

namespace cdmm {
namespace {

TEST(WorkloadsTest, AllNinePresentInPaperOrder) {
  const auto& all = AllWorkloads();
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(all[0].name, "MAIN");
  EXPECT_EQ(all[1].name, "FDJAC");
  EXPECT_EQ(all[2].name, "TQL");
  EXPECT_EQ(all[3].name, "FIELD");
  EXPECT_EQ(all[4].name, "INIT");
  EXPECT_EQ(all[5].name, "APPROX");
  EXPECT_EQ(all[6].name, "HYBRJ");
  EXPECT_EQ(all[7].name, "CONDUCT");
  EXPECT_EQ(all[8].name, "HWSCRT");
}

TEST(WorkloadsTest, ExtendedWorkloadsCompile) {
  const auto& extra = ExtendedWorkloads();
  ASSERT_EQ(extra.size(), 7u);
  for (const Workload& w : extra) {
    auto cp = CompiledProgram::FromSource(w.source);
    ASSERT_TRUE(cp.ok()) << w.name << ": " << cp.error().ToString();
    EXPECT_GT(cp.value().trace().reference_count(), 100u) << w.name;
    EXPECT_FALSE(cp.value().trace().directives().empty()) << w.name;
  }
}

TEST(WorkloadsTest, FindWorkloadLocatesExtendedKernels) {
  EXPECT_EQ(FindWorkload("TRED").name, "TRED");
  EXPECT_EQ(FindWorkload("POISSN").name, "POISSN");
  EXPECT_EQ(FindWorkload("GAUSSJ").name, "GAUSSJ");
  EXPECT_EQ(FindWorkload("MATMULB").name, "MATMULB");
  EXPECT_EQ(FindWorkload("SORRB").name, "SORRB");
  EXPECT_EQ(FindWorkload("GATHER").name, "GATHER");
  EXPECT_EQ(FindWorkload("STENCILG").name, "STENCILG");
}

TEST(WorkloadsTest, FindWorkloadDiesOnUnknown) {
  EXPECT_DEATH(FindWorkload("NOPE"), "unknown workload");
}

TEST(WorkloadsTest, VariantTablesHavePaperRowCounts) {
  EXPECT_EQ(Table1Variants().size(), 8u);   // Table 1 rows
  EXPECT_EQ(Table2Variants().size(), 8u);   // Table 2 rows
  EXPECT_EQ(Table3Variants().size(), 14u);  // Tables 3/4 rows
}

TEST(WorkloadsTest, FindVariantLocatesRows) {
  EXPECT_EQ(FindVariant("MAIN3").workload, "MAIN");
  EXPECT_EQ(FindVariant("HWSCRT").workload, "HWSCRT");
  EXPECT_DEATH(FindVariant("NOPE"), "unknown variant");
}

// Parameterised over all nine programs: each must compile through the whole
// pipeline and produce a structurally sane trace.
class WorkloadPipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadPipelineTest, ParsesAndChecks) {
  const Workload& w = FindWorkload(GetParam());
  Program p = ParseWorkload(w);
  EXPECT_EQ(p.name, w.name);
  EXPECT_GT(p.loop_count, 0u);
  EXPECT_FALSE(p.arrays.empty());
}

TEST_P(WorkloadPipelineTest, CompilesAndTraces) {
  const Workload& w = FindWorkload(GetParam());
  auto cp = CompiledProgram::FromSource(w.source);
  ASSERT_TRUE(cp.ok()) << cp.error().ToString();
  const Trace& t = cp.value().trace();
  EXPECT_GT(t.reference_count(), 10000u) << "trace suspiciously short";
  EXPECT_LT(t.reference_count(), 5'000'000u) << "trace suspiciously long";
  EXPECT_GT(t.virtual_pages(), 0u);
  EXPECT_FALSE(t.directives().empty());
  // Every page referenced must be inside the virtual space.
  TraceStats stats = t.ComputeStats();
  EXPECT_LT(stats.max_page, t.virtual_pages());
}

TEST_P(WorkloadPipelineTest, EveryLoopEmitsItsAllocate) {
  const Workload& w = FindWorkload(GetParam());
  auto cp = CompiledProgram::FromSource(w.source);
  ASSERT_TRUE(cp.ok());
  const CompiledProgram& c = cp.value();
  std::set<uint32_t> loops_with_allocate;
  for (const DirectiveRecord& d : c.trace().directives()) {
    if (d.kind == DirectiveRecord::Kind::kAllocate) {
      loops_with_allocate.insert(d.loop_id);
    }
  }
  EXPECT_EQ(loops_with_allocate.size(), c.program().loop_count);
}

INSTANTIATE_TEST_SUITE_P(AllNine, WorkloadPipelineTest,
                         ::testing::Values("MAIN", "FDJAC", "TQL", "FIELD", "INIT", "APPROX",
                                           "HYBRJ", "CONDUCT", "HWSCRT"));

// The workloads/ directory ships each kernel as a standalone .f file (for
// cdmmc and for reading); they must stay in sync with the embedded sources.
class WorkloadFileTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadFileTest, OnDiskSourceMatchesEmbedded) {
  std::string name = GetParam();
  std::string lower = name;
  for (char& c : lower) {
    c = static_cast<char>(tolower(c));
  }
  std::ifstream file(std::string(CDMM_SOURCE_DIR) + "/workloads/" + lower + ".f");
  ASSERT_TRUE(file.good()) << "missing workloads/" << lower << ".f";
  std::ostringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), FindWorkload(name).source);
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, WorkloadFileTest,
                         ::testing::Values("MAIN", "FDJAC", "TQL", "FIELD", "INIT", "APPROX",
                                           "HYBRJ", "CONDUCT", "HWSCRT", "TRED", "POISSN",
                                           "GAUSSJ"));

TEST(WorkloadSizesTest, ConductMatchesPaperScale) {
  // The paper: "program CONDUCT has a total of 270 pages in its virtual
  // space". Our re-creation lands within a few pages of that.
  auto cp = CompiledProgram::FromSource(FindWorkload("CONDUCT").source);
  ASSERT_TRUE(cp.ok());
  EXPECT_NEAR(cp.value().virtual_pages(), 270.0, 10.0);
}

TEST(WorkloadSizesTest, HwscrtMatchesPaperScale) {
  // The paper: "program HWSCRT has 69 pages in its virtual space".
  auto cp = CompiledProgram::FromSource(FindWorkload("HWSCRT").source);
  ASSERT_TRUE(cp.ok());
  EXPECT_NEAR(cp.value().virtual_pages(), 69.0, 3.0);
}

TEST(WorkloadSizesTest, AllProgramsFitSimulationScale) {
  for (const Workload& w : AllWorkloads()) {
    auto cp = CompiledProgram::FromSource(w.source);
    ASSERT_TRUE(cp.ok()) << w.name;
    EXPECT_GE(cp.value().virtual_pages(), 30u) << w.name;
    EXPECT_LE(cp.value().virtual_pages(), 700u) << w.name;
  }
}

}  // namespace
}  // namespace cdmm
