#include "src/analysis/loop_tree.h"

#include <gtest/gtest.h>

#include "src/lang/sema.h"

namespace cdmm {
namespace {

Program ParseOk(std::string_view source) {
  auto program = ParseAndCheck(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().ToString());
  return std::move(program).value();
}

// The paper's Figure 5a/5b shape: loop 4 is outermost and contains loop 2
// (no children) followed by loop 3 which contains loop 1. Procedure 1
// assigns PI=3 to loop 4, PI=1 to loop 2, PI=2 to loop 3, PI=1 to loop 1.
constexpr char kFigure5Shape[] = R"(
      PROGRAM FIG5
      PARAMETER (N = 10)
      DIMENSION A(N), B(N), C(N), D(N), E(N), F(N)
      DO 40 I = 1, N
        A(I) = B(I)
        DO 20 J = 1, N
          C(J) = D(J)
   20   CONTINUE
        E(1) = F(1)
        DO 30 K = 1, N
          E(K) = F(K)
          DO 10 L = 1, N
            F(L) = E(K)
   10     CONTINUE
   30   CONTINUE
   40 CONTINUE
      END
)";

TEST(LoopTreeTest, BuildsFigure5Structure) {
  Program p = ParseOk(kFigure5Shape);
  LoopTree tree(p);
  ASSERT_EQ(tree.roots().size(), 1u);
  const LoopNode& root = *tree.roots()[0];
  EXPECT_EQ(root.loop->label, 40);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->loop->label, 20);
  EXPECT_EQ(root.children[1]->loop->label, 30);
  ASSERT_EQ(root.children[1]->children.size(), 1u);
  EXPECT_EQ(root.children[1]->children[0]->loop->label, 10);
}

TEST(LoopTreeTest, Procedure1PriorityIndexes) {
  Program p = ParseOk(kFigure5Shape);
  LoopTree tree(p);
  const LoopNode& root = *tree.roots()[0];
  EXPECT_EQ(root.priority_index, 3);                           // loop 40
  EXPECT_EQ(root.children[0]->priority_index, 1);              // loop 20
  EXPECT_EQ(root.children[1]->priority_index, 2);              // loop 30
  EXPECT_EQ(root.children[1]->children[0]->priority_index, 1); // loop 10
}

TEST(LoopTreeTest, NestLevels) {
  Program p = ParseOk(kFigure5Shape);
  LoopTree tree(p);
  const LoopNode& root = *tree.roots()[0];
  EXPECT_EQ(root.level, 1);
  EXPECT_EQ(root.children[0]->level, 2);
  EXPECT_EQ(root.children[1]->children[0]->level, 3);
  EXPECT_EQ(tree.max_depth(), 3);
}

TEST(LoopTreeTest, PriorityIsStrictlyDecreasingAlongAncestorChains) {
  Program p = ParseOk(kFigure5Shape);
  LoopTree tree(p);
  for (const LoopNode* node : tree.preorder()) {
    if (node->parent != nullptr) {
      EXPECT_GT(node->parent->priority_index, node->priority_index);
    }
  }
}

TEST(LoopTreeTest, DeepUniformNest) {
  Program p = ParseOk(R"(
      PROGRAM DEEP
      DIMENSION A(4,4), B(4,4)
      DO 40 I = 1, 2
        DO 30 J = 1, 2
          DO 20 K = 1, 2
            DO 10 L = 1, 2
              A(L,K) = B(J,I)
   10       CONTINUE
   20     CONTINUE
   30   CONTINUE
   40 CONTINUE
      END
)");
  LoopTree tree(p);
  EXPECT_EQ(tree.max_depth(), 4);
  EXPECT_EQ(tree.roots()[0]->priority_index, 4);
  EXPECT_EQ(tree.preorder().back()->priority_index, 1);
}

TEST(LoopTreeTest, MultipleTopLevelNests) {
  Program p = ParseOk(R"(
      PROGRAM TWO
      DIMENSION A(4)
      DO 10 I = 1, 4
        A(I) = 0.0
   10 CONTINUE
      DO 20 J = 1, 4
        A(J) = 1.0
   20 CONTINUE
      END
)");
  LoopTree tree(p);
  EXPECT_EQ(tree.roots().size(), 2u);
  EXPECT_EQ(tree.max_depth(), 1);
  EXPECT_EQ(tree.roots()[0]->priority_index, 1);
  EXPECT_EQ(tree.roots()[1]->priority_index, 1);
}

TEST(LoopTreeTest, TripCounts) {
  Program p = ParseOk(R"(
      PROGRAM TRIPS
      DIMENSION A(64)
      DO 10 I = 1, 10
        A(I) = 0.0
   10 CONTINUE
      DO 20 I = 1, 10, 3
        A(I) = 0.0
   20 CONTINUE
      DO 30 I = 10, 1, -2
        A(I) = 0.0
   30 CONTINUE
      DO 40 I = 5, 4
        A(I) = 0.0
   40 CONTINUE
      END
)");
  LoopTree tree(p);
  EXPECT_EQ(tree.node(1).TripCount(), 10);
  EXPECT_EQ(tree.node(2).TripCount(), 4);  // 1,4,7,10
  EXPECT_EQ(tree.node(3).TripCount(), 5);  // 10,8,6,4,2
  EXPECT_EQ(tree.node(4).TripCount(), 0);  // zero-trip
}

TEST(LoopTreeTest, TriangularTripCountUnknown) {
  Program p = ParseOk(R"(
      PROGRAM TRI
      DIMENSION A(8,8)
      DO 20 J = 1, 8
        DO 10 I = J, 8
          A(I,J) = 0.0
   10   CONTINUE
   20 CONTINUE
      END
)");
  LoopTree tree(p);
  EXPECT_EQ(tree.node(2).TripCount(), -1);
}

TEST(LoopTreeTest, BodySegmentsSplitAtChildLoops) {
  Program p = ParseOk(kFigure5Shape);
  LoopTree tree(p);
  const LoopNode& root = *tree.roots()[0];
  // Segments: [A(I)=B(I)] -> loop 20, [E(1)=F(1)] -> loop 30.
  ASSERT_EQ(root.segments.size(), 2u);
  EXPECT_EQ(root.segments[0].assigns.size(), 1u);
  EXPECT_EQ(root.segments[0].next_child->loop->label, 20);
  EXPECT_EQ(root.segments[1].assigns.size(), 1u);
  EXPECT_EQ(root.segments[1].next_child->loop->label, 30);
}

TEST(LoopTreeTest, TrailingSegmentHasNoChild) {
  Program p = ParseOk(R"(
      PROGRAM TRAIL
      DIMENSION A(4), B(4)
      DO 20 I = 1, 4
        DO 10 J = 1, 4
          A(J) = 0.0
   10   CONTINUE
        B(I) = A(I)
   20 CONTINUE
      END
)");
  LoopTree tree(p);
  const LoopNode& root = *tree.roots()[0];
  ASSERT_EQ(root.segments.size(), 2u);
  EXPECT_EQ(root.segments[0].next_child->loop->label, 10);
  EXPECT_TRUE(root.segments[0].assigns.empty());
  EXPECT_EQ(root.segments[1].next_child, nullptr);
  EXPECT_EQ(root.segments[1].assigns.size(), 1u);
}

TEST(LoopTreeTest, NodeLookupById) {
  Program p = ParseOk(kFigure5Shape);
  LoopTree tree(p);
  EXPECT_EQ(tree.node(1).loop->label, 40);
  EXPECT_EQ(tree.node(4).loop->label, 10);
  EXPECT_EQ(tree.preorder().size(), 4u);
}

}  // namespace
}  // namespace cdmm
