#include "src/vm/cd_core.h"

#include <gtest/gtest.h>

namespace cdmm {
namespace {

TEST(CdCoreTest, TouchFaultsOnceThenHits) {
  CdCore core(4, true);
  EXPECT_TRUE(core.Touch(1));
  EXPECT_FALSE(core.Touch(1));
  EXPECT_EQ(core.resident(), 1u);
}

TEST(CdCoreTest, GrantBoundsUnlockedResidency) {
  CdCore core(2, true);
  core.Touch(0);
  core.Touch(1);
  core.Touch(2);  // evicts LRU (0)
  EXPECT_EQ(core.resident(), 2u);
  EXPECT_TRUE(core.Touch(0));  // 0 was evicted
  EXPECT_FALSE(core.IsResident(1));  // 1 was the LRU at that point
}

TEST(CdCoreTest, LruOrderRespected) {
  CdCore core(3, true);
  core.Touch(0);
  core.Touch(1);
  core.Touch(2);
  core.Touch(0);  // 0 most recent; LRU order now 1,2,0
  core.Touch(3);  // evicts 1
  EXPECT_FALSE(core.IsResident(1));
  EXPECT_TRUE(core.IsResident(0));
  EXPECT_TRUE(core.IsResident(2));
}

TEST(CdCoreTest, ShrinkEvictsDownToGrant) {
  CdCore core(4, true);
  for (PageId p = 0; p < 4; ++p) {
    core.Touch(p);
  }
  core.SetGrant(2);
  EXPECT_EQ(core.resident(), 2u);
  EXPECT_TRUE(core.IsResident(2));
  EXPECT_TRUE(core.IsResident(3));
}

TEST(CdCoreTest, GrantFlooredAtOne) {
  CdCore core(0, true);
  EXPECT_EQ(core.grant(), 1u);
  core.SetGrant(0);
  EXPECT_EQ(core.grant(), 1u);
}

TEST(CdCoreTest, LockedPagesSurviveShrink) {
  CdCore core(4, true);
  for (PageId p = 0; p < 4; ++p) {
    core.Touch(p);
  }
  core.Lock({0, 1}, 2);
  EXPECT_EQ(core.locked_resident(), 2u);
  core.SetGrant(1);
  // Unlocked pages trimmed to 1, locked pages retained on top.
  EXPECT_EQ(core.resident(), 3u);
  EXPECT_TRUE(core.IsResident(0));
  EXPECT_TRUE(core.IsResident(1));
  EXPECT_EQ(core.held(), 1u + 2u);
}

TEST(CdCoreTest, LockedPagesNotEvictedByFaults) {
  CdCore core(1, true);
  core.Touch(0);
  core.Lock({0}, 2);
  core.Touch(1);  // occupies the single unlocked slot
  core.Touch(2);  // evicts 1, not the locked 0
  EXPECT_TRUE(core.IsResident(0));
  EXPECT_TRUE(core.IsResident(2));
  EXPECT_FALSE(core.IsResident(1));
}

TEST(CdCoreTest, LockingNonResidentPageTakesEffectOnFaultIn) {
  CdCore core(1, true);
  core.Lock({7}, 3);
  EXPECT_EQ(core.locked_resident(), 0u);
  core.Touch(7);
  EXPECT_EQ(core.locked_resident(), 1u);
  // The locked page rides on top of the grant.
  core.Touch(1);
  core.Touch(2);
  EXPECT_TRUE(core.IsResident(7));
  EXPECT_EQ(core.resident(), 2u);
}

TEST(CdCoreTest, UnlockReturnsPagesToGrantAccounting) {
  CdCore core(1, true);
  core.Touch(0);
  core.Lock({0}, 2);
  core.Touch(1);
  EXPECT_EQ(core.resident(), 2u);
  core.Unlock({0});
  // 0 now counts against the 1-page grant: residency trims immediately.
  EXPECT_EQ(core.resident(), 1u);
  EXPECT_EQ(core.locked_resident(), 0u);
}

TEST(CdCoreTest, UnlockOfUnknownPageIsNoOp) {
  CdCore core(2, true);
  core.Touch(0);
  core.Unlock({9});
  EXPECT_EQ(core.resident(), 1u);
}

TEST(CdCoreTest, EnforceCapEvictsUnlockedFirst) {
  CdCore core(4, true);
  for (PageId p = 0; p < 4; ++p) {
    core.Touch(p);
  }
  core.Lock({0}, 2);
  uint32_t released = core.EnforceCap(2);
  EXPECT_EQ(released, 0u);
  EXPECT_EQ(core.resident(), 2u);
  EXPECT_TRUE(core.IsResident(0));  // the locked page survived
}

TEST(CdCoreTest, EnforceCapSoftReleasesHighestPjFirst) {
  CdCore core(3, true);
  core.Touch(0);
  core.Touch(1);
  core.Touch(2);
  core.Lock({0}, 2);  // PJ 2 = higher priority (kept longer)
  core.Lock({1}, 4);  // PJ 4 = lowest priority, released first
  core.Lock({2}, 3);
  uint32_t released = core.EnforceCap(2);
  EXPECT_EQ(released, 1u);
  EXPECT_FALSE(core.IsResident(1));
  EXPECT_TRUE(core.IsResident(0));
  EXPECT_TRUE(core.IsResident(2));
}

TEST(CdCoreTest, SoftReleaseLockReportsWhenNothingLocked) {
  CdCore core(2, true);
  core.Touch(0);
  EXPECT_FALSE(core.SoftReleaseLock());
  core.Lock({0}, 2);
  EXPECT_TRUE(core.SoftReleaseLock());
  EXPECT_FALSE(core.IsResident(0));
}

TEST(CdCoreTest, DropAllClearsResidencyButKeepsLockMetadata) {
  CdCore core(4, true);
  core.Touch(0);
  core.Lock({0}, 2);
  core.DropAll();
  EXPECT_EQ(core.resident(), 0u);
  EXPECT_EQ(core.locked_resident(), 0u);
  EXPECT_TRUE(core.IsLocked(0));
  // Re-faulting the page restores its pinned status.
  core.Touch(0);
  EXPECT_EQ(core.locked_resident(), 1u);
}

TEST(CdCoreTest, HonorLocksFalseIgnoresLockCalls) {
  CdCore core(1, false);
  core.Touch(0);
  core.Lock({0}, 2);
  EXPECT_FALSE(core.IsLocked(0));
  core.Touch(1);  // evicts 0 freely
  EXPECT_FALSE(core.IsResident(0));
}

TEST(CdCoreTest, RelockUpdatesPriority) {
  CdCore core(3, true);
  core.Touch(0);
  core.Touch(1);
  core.Lock({0}, 4);
  core.Lock({1}, 3);
  core.Lock({0}, 2);  // re-lock with higher priority
  // Now page 1 has the highest PJ and is released first.
  core.EnforceCap(1);
  EXPECT_TRUE(core.IsResident(0));
  EXPECT_FALSE(core.IsResident(1));
}

}  // namespace
}  // namespace cdmm
