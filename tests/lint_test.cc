// Tests for the cdmm-lint pass framework: golden clean runs over every
// builtin workload and on-disk source, adversarial fixtures asserting exact
// diagnostic codes and source spans, the sema accumulation entry point, and
// the corrupted-plan paths of the directive verifier.
#include "src/lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/locality.h"
#include "src/analysis/loop_tree.h"
#include "src/cdmm/pipeline.h"
#include "src/cdmm/validation.h"
#include "src/directives/plan.h"
#include "src/lang/parser.h"
#include "src/lang/sema.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

LintOptions DriverOptions() {
  LintOptions opt;
  opt.locality.min_default_pages = 1;  // the cdmmc default
  return opt;
}

std::vector<std::string> Codes(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : diags) {
    codes.push_back(d.code);
  }
  return codes;
}

bool HasCode(const std::vector<Diagnostic>& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& FindCode(const std::vector<Diagnostic>& diags, const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) {
      return d;
    }
  }
  ADD_FAILURE() << "no diagnostic with code " << code;
  static const Diagnostic missing;
  return missing;
}

// ---------------------------------------------------------------------------
// Golden clean runs: the acceptance bar is zero diagnostics on every builtin
// workload and every checked-in source file.

TEST(LintGoldenTest, AllBuiltinWorkloadsLintClean) {
  for (const auto* list : {&AllWorkloads(), &ExtendedWorkloads()}) {
    for (const Workload& w : *list) {
      std::vector<Diagnostic> diags = LintSource(w.source, DriverOptions());
      EXPECT_TRUE(diags.empty()) << w.name << ": " << RenderText(diags, w.name);
    }
  }
}

TEST(LintGoldenTest, OnDiskWorkloadSourcesLintClean) {
  const char* files[] = {"approx.f", "conduct.f", "fdjac.f",  "field.f", "gaussj.f", "hwscrt.f",
                         "hybrj.f",  "init.f",    "main.f",   "poissn.f", "tql.f",   "tred.f"};
  for (const char* file : files) {
    std::string path = std::string(CDMM_SOURCE_DIR) + "/workloads/" + file;
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<Diagnostic> diags = LintSource(buffer.str(), DriverOptions());
    EXPECT_TRUE(diags.empty()) << file << ": " << RenderText(diags, file);
  }
}

TEST(LintGoldenTest, CleanRunIsStableAcrossDirectiveOptions) {
  LintOptions opt = DriverOptions();
  opt.directives.insert_locks = false;
  for (const Workload& w : AllWorkloads()) {
    EXPECT_TRUE(LintSource(w.source, opt).empty()) << w.name;
  }
  opt.directives.insert_locks = true;
  opt.directives.insert_allocate = true;
  EXPECT_TRUE(LintSource(AllWorkloads().front().source, opt).empty());
}

// ---------------------------------------------------------------------------
// Adversarial fixtures. Each asserts the exact code and the exact source
// span so that renumbering a fixture line is a test failure, not a shrug.

TEST(LintAdversarialTest, OutOfBoundsSubscriptReportsB001AndB002) {
  const char* source =
      "      PROGRAM OOB\n"
      "      PARAMETER (N = 10)\n"
      "      DIMENSION A(N), B(N)\n"
      "      DO 10 I = 1, 20\n"
      "        A(I) = B(I-1)\n"
      "   10 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"B002", "B001", "B002"}));

  // A(I) with I in [1,20] against extent 10: upper-bound overflow at the ref.
  EXPECT_EQ(diags[0].location.line, 5);
  EXPECT_EQ(diags[0].location.column, 11);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].pass, "subscript-bounds");
  EXPECT_NE(diags[0].message.find("subscript 1 of A(I) reaches 20"), std::string::npos);
  EXPECT_NE(diags[0].message.find("extent 10"), std::string::npos);
  EXPECT_FALSE(diags[0].fixit.empty());

  // B(I-1) reaches 0 (B001) and 19 (B002), both anchored at the subscript.
  EXPECT_EQ(diags[1].location.line, 5);
  EXPECT_EQ(diags[1].location.column, 18);
  EXPECT_NE(diags[1].message.find("reaches 0, below the lower bound 1"), std::string::npos);
  EXPECT_EQ(diags[2].location.line, 5);
  EXPECT_EQ(diags[2].location.column, 18);
}

TEST(LintAdversarialTest, TriangularBoundsAreResolvedThroughEnclosingLoops) {
  // J runs to I <= 12 > extent 8: the bound pass must chase I's interval.
  const char* source =
      "      PROGRAM TRI\n"
      "      PARAMETER (N = 8)\n"
      "      DIMENSION A(N)\n"
      "      DO 20 I = 1, 12\n"
      "        DO 10 J = 1, I\n"
      "          A(J) = 1.0\n"
      "   10   CONTINUE\n"
      "   20 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  ASSERT_TRUE(HasCode(diags, "B002")) << RenderText(diags, "tri");
  EXPECT_NE(FindCode(diags, "B002").message.find("reaches 12"), std::string::npos);
}

TEST(LintAdversarialTest, LockWithoutAllocateReportsD001) {
  // Algorithm 2 inserts a LOCK for the host's body segment; suppressing
  // Algorithm 1 leaves that LOCK uncovered.
  const char* source =
      "      PROGRAM NEST\n"
      "      PARAMETER (M = 8, N = 8)\n"
      "      DIMENSION A(M,N), B(M,N)\n"
      "      DO 20 J = 1, N\n"
      "        A(1,J) = 0.0\n"
      "        DO 10 I = 1, M\n"
      "          B(I,J) = A(I,J) + 1.0\n"
      "   10   CONTINUE\n"
      "   20 CONTINUE\n"
      "      END\n";
  LintOptions opt = DriverOptions();
  opt.directives.insert_allocate = false;
  std::vector<Diagnostic> diags = LintSource(source, opt);
  ASSERT_EQ(diags.size(), 1u) << RenderText(diags, "nest");
  EXPECT_EQ(diags[0].code, "D001");
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].pass, "directive-verifier");
  EXPECT_EQ(diags[0].location.line, 6);  // the child DO the LOCK precedes
  EXPECT_EQ(diags[0].location.column, 9);
  EXPECT_NE(diags[0].message.find("not preceded by a covering ALLOCATE"), std::string::npos);
  EXPECT_NE(diags[0].fixit.find("Algorithm 1"), std::string::npos);
}

TEST(LintAdversarialTest, ArrayFreeLoopReportsDeadAllocateX001) {
  const char* source =
      "      PROGRAM DEAD\n"
      "      PARAMETER (N = 8)\n"
      "      DIMENSION A(N)\n"
      "      DO 10 I = 1, N\n"
      "        A(I) = 1.0\n"
      "   10 CONTINUE\n"
      "      DO 20 I = 1, N\n"
      "        T = T + 1.0\n"
      "   20 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  ASSERT_EQ(diags.size(), 1u) << RenderText(diags, "dead");
  EXPECT_EQ(diags[0].code, "X001");
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].location.line, 7);  // the DO 20 statement
  EXPECT_EQ(diags[0].location.column, 7);
  EXPECT_NE(diags[0].message.find("references no arrays"), std::string::npos);
}

TEST(LintAdversarialTest, ShadowedDoIndexAndUnusedArrayReportH002AndH001) {
  const char* source =
      "      PROGRAM SHAD\n"
      "      PARAMETER (N = 6, K = 3)\n"
      "      DIMENSION A(N), B(N), C(N)\n"
      "      DO 10 K = 1, N\n"
      "        A(K) = B(K) + 1.0\n"
      "   10 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"H001", "H002"}));

  EXPECT_EQ(diags[0].location.line, 3);  // C in the DIMENSION statement
  EXPECT_EQ(diags[0].location.column, 29);
  EXPECT_NE(diags[0].message.find("array C"), std::string::npos);
  EXPECT_NE(diags[0].fixit.find("remove C"), std::string::npos);

  EXPECT_EQ(diags[1].location.line, 4);  // the DO index token
  EXPECT_EQ(diags[1].location.column, 13);
  EXPECT_EQ(diags[1].severity, Severity::kWarning);
  EXPECT_NE(diags[1].message.find("DO index K shadows PARAMETER K"), std::string::npos);
  EXPECT_NE(diags[1].message.find("declared at 2:25"), std::string::npos);
}

TEST(LintAdversarialTest, ParseFailureYieldsSingleF001) {
  std::vector<Diagnostic> diags = LintSource("      PROGRAM BAD\n", DriverOptions());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "F001");
  EXPECT_EQ(diags[0].pass, "parse");
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

// ---------------------------------------------------------------------------
// Sema accumulation: CheckProgramAll keeps going; CheckProgram stays the
// first-error view used by the pipeline.

TEST(LintSemaTest, SemaAccumulatesEveryErrorInSourceOrder) {
  const char* source =
      "      PROGRAM MULTI\n"
      "      PARAMETER (N = 4)\n"
      "      DIMENSION A(N), A(N)\n"
      "      DO 10 I = 1, N\n"
      "        A(I) = C(I)\n"
      "        B = A\n"
      "   10 CONTINUE\n"
      "      END\n";
  Result<Program> program = Parse(source);
  ASSERT_TRUE(program.ok());
  std::vector<Diagnostic> diags = CheckProgramAll(program.value());
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"S001", "S003", "S009"}));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.pass, "sema");
    EXPECT_EQ(d.severity, Severity::kError);
  }
  // The single-error adapter returns exactly the first accumulated one.
  std::optional<Error> first = CheckProgram(program.value());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->message, diags.front().message);
  EXPECT_EQ(first->location.line, diags.front().location.line);
}

TEST(LintSemaTest, AnalysisPassesAreGatedButHygieneStillRuns) {
  // S003 makes the loop tree unusable; H001 must still fire for D.
  const char* source =
      "      PROGRAM GATE\n"
      "      PARAMETER (N = 4)\n"
      "      DIMENSION A(N), D(N)\n"
      "      DO 10 I = 1, N\n"
      "        A(I) = C(I)\n"
      "   10 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  EXPECT_TRUE(HasCode(diags, "S003"));
  EXPECT_TRUE(HasCode(diags, "H001"));
  for (const Diagnostic& d : diags) {
    EXPECT_TRUE(d.pass == "sema" || d.pass == "hygiene") << d.ToString();
  }
}

// ---------------------------------------------------------------------------
// Corrupted-plan fixtures: hand-damage a real DirectivePlan and run the
// directive passes directly, the way a stale or hand-edited plan would fail.

struct PlanFixture {
  Program program;
  LoopTree tree;
  LocalityAnalysis locality;
  DirectivePlan plan;
  DiagnosticEngine engine;

  explicit PlanFixture(const char* source, LocalityOptions options = {})
      : program(Parse(source).value()),
        tree(program),
        locality(program, tree, options),
        plan(BuildDirectivePlan(tree, locality)) {}

  std::vector<Diagnostic> RunDirectivePasses() {
    LintContext ctx;
    ctx.program = &program;
    ctx.tree = &tree;
    ctx.locality = &locality;
    ctx.plan = &plan;
    ctx.diags = &engine;
    DirectiveVerifierPass().Run(ctx);
    DeadDirectivePass().Run(ctx);
    engine.SortBySource();
    return engine.Take();
  }
};

constexpr char kNestSource[] =
    "      PROGRAM NEST\n"
    "      PARAMETER (M = 8, N = 8)\n"
    "      DIMENSION A(M,N), B(M,N)\n"
    "      DO 20 J = 1, N\n"
    "        A(1,J) = 0.0\n"
    "        DO 10 I = 1, M\n"
    "          B(I,J) = A(I,J) + 1.0\n"
    "   10   CONTINUE\n"
    "   20 CONTINUE\n"
    "      END\n";

TEST(LintPlanTest, GeneratedPlanVerifiesClean) {
  PlanFixture fx(kNestSource);
  EXPECT_TRUE(fx.RunDirectivePasses().empty());
}

TEST(LintPlanTest, MissingUnlockReportsD002) {
  PlanFixture fx(kNestSource);
  ASSERT_FALSE(fx.plan.unlock_after_loop.empty());
  fx.plan.unlock_after_loop.clear();
  std::vector<Diagnostic> diags = fx.RunDirectivePasses();
  ASSERT_TRUE(HasCode(diags, "D002")) << RenderText(diags, "nest");
  const Diagnostic& d = FindCode(diags, "D002");
  EXPECT_NE(d.message.find("never unlocked on the loop's exit path"), std::string::npos);
  EXPECT_NE(d.fixit.find("UNLOCK after loop 20"), std::string::npos);
}

TEST(LintPlanTest, UndersizedAllocationReportsD003) {
  PlanFixture fx(kNestSource);
  auto it = fx.plan.allocate_before_loop.begin();
  ASSERT_NE(it, fx.plan.allocate_before_loop.end());
  // Lock more distinct arrays than the (now zeroed-down) grant covers.
  for (LockPlan& lock : fx.plan.locks) {
    lock.arrays = {"A", "B"};
  }
  for (auto& [id, ap] : fx.plan.allocate_before_loop) {
    for (AllocateRequest& req : ap.chain) {
      req.pages = 1;
    }
  }
  std::vector<Diagnostic> diags = fx.RunDirectivePasses();
  ASSERT_TRUE(HasCode(diags, "D003")) << RenderText(diags, "nest");
  EXPECT_NE(FindCode(diags, "D003").message.find("grants only X=1"), std::string::npos);
}

TEST(LintPlanTest, CorruptedChainReportsD004) {
  PlanFixture fx(kNestSource);
  bool corrupted = false;
  for (auto& [id, ap] : fx.plan.allocate_before_loop) {
    if (ap.chain.size() >= 2) {
      std::swap(ap.chain.front().priority, ap.chain.back().priority);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  std::vector<Diagnostic> diags = fx.RunDirectivePasses();
  EXPECT_TRUE(HasCode(diags, "D004")) << RenderText(diags, "nest");
}

TEST(LintPlanTest, UnknownLoopIdReportsD005) {
  PlanFixture fx(kNestSource);
  AllocatePlan bogus;
  bogus.loop_id = 999;
  bogus.chain.push_back(AllocateRequest{1, 1});
  fx.plan.allocate_before_loop[999] = bogus;
  std::vector<Diagnostic> diags = fx.RunDirectivePasses();
  ASSERT_TRUE(HasCode(diags, "D005")) << RenderText(diags, "nest");
  EXPECT_NE(FindCode(diags, "D005").message.find("unknown loop id 999"), std::string::npos);
}

TEST(LintPlanTest, UnlockOfNeverLockedArrayReportsX002) {
  PlanFixture fx(kNestSource);
  ASSERT_FALSE(fx.plan.unlock_after_loop.empty());
  fx.plan.unlock_after_loop.begin()->second.arrays.push_back("B");
  std::vector<Diagnostic> diags = fx.RunDirectivePasses();
  ASSERT_TRUE(HasCode(diags, "X002")) << RenderText(diags, "nest");
  EXPECT_EQ(FindCode(diags, "X002").severity, Severity::kWarning);
}

TEST(LintPlanTest, LockOfUntouchedArrayReportsX003) {
  PlanFixture fx(kNestSource);
  ASSERT_FALSE(fx.plan.locks.empty());
  // B is declared but the segment before loop 10 only touches A.
  fx.plan.locks.front().arrays.push_back("B");
  // Keep the UNLOCK balanced so only X003 fires for the addition.
  for (auto& [id, unlock] : fx.plan.unlock_after_loop) {
    unlock.arrays.push_back("B");
  }
  std::vector<Diagnostic> diags = fx.RunDirectivePasses();
  ASSERT_TRUE(HasCode(diags, "X003")) << RenderText(diags, "nest");
  EXPECT_NE(FindCode(diags, "X003").message.find("never reference it"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Dependence-powered passes. P001/P003 run through the full LintSource
// pipeline on wrongly-marked programs; R001/R002 need a tampered plan, so
// they run the access-range pass directly over a hand-damaged fixture.

TEST(LintDependenceTest, WronglyMarkedRecurrenceReportsP001) {
  const char* source =
      "      PROGRAM PMARK\n"
      "      DIMENSION A(16), B(16)\n"
      "!$CDMM INDEPENDENT\n"
      "      DO 10 I = 2, 16\n"
      "        A(I) = A(I-1) + B(I)\n"
      "   10 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"P001"})) << RenderText(diags, "pmark");
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].pass, "parallel-independence");
  EXPECT_EQ(diags[0].location.line, 4);
  EXPECT_EQ(diags[0].location.column, 7);
  EXPECT_NE(diags[0].message.find("marked INDEPENDENT but carries a proven"), std::string::npos);
  EXPECT_NE(diags[0].message.find("dependence on A"), std::string::npos);
  EXPECT_NE(diags[0].fixit.find("blocking pair: A at 5:9 -> A at 5:16"), std::string::npos)
      << diags[0].fixit;
}

TEST(LintDependenceTest, MarkedIndirectGatherReportsP003AndMissedMarkP002) {
  const char* source =
      "      PROGRAM PASUME\n"
      "      PARAMETER (N = 8)\n"
      "      INTEGER IDX(N)\n"
      "      DIMENSION A(N), B(N)\n"
      "      DO 10 I = 1, N\n"
      "        IDX(I) = I\n"
      "   10 CONTINUE\n"
      "!$CDMM INDEPENDENT\n"
      "      DO 20 I = 1, N\n"
      "        B(IDX(I)) = A(I)\n"
      "   20 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"P002", "P003"})) << RenderText(diags, "p");

  // The provably independent init loop is unmarked in a program using marks.
  EXPECT_EQ(diags[0].severity, Severity::kNote);
  EXPECT_EQ(diags[0].location.line, 5);
  EXPECT_NE(diags[0].fixit.find("add `!$CDMM INDEPENDENT` before loop 10"), std::string::npos);

  // The marked gather is downgraded: the indirect write cannot be analyzed.
  EXPECT_EQ(diags[1].severity, Severity::kWarning);
  EXPECT_EQ(diags[1].pass, "parallel-independence");
  EXPECT_EQ(diags[1].location.line, 9);
  EXPECT_EQ(diags[1].location.column, 7);
  EXPECT_NE(diags[1].message.find("downgraded"), std::string::npos);
  EXPECT_NE(diags[1].fixit.find("blocking pair: B at 10:9"), std::string::npos) << diags[1].fixit;
}

struct DepPlanFixture {
  Program program;
  LoopTree tree;
  LocalityAnalysis locality;
  DirectivePlan plan;
  DependenceGraph deps;
  DiagnosticEngine engine;

  explicit DepPlanFixture(const char* source, LocalityOptions options = {})
      : program(Parse(source).value()),
        tree(program),
        locality(program, tree, options),
        plan(BuildDirectivePlan(tree, locality)),
        deps(DependenceGraph::Build(program, tree)) {}

  std::vector<Diagnostic> RunRangePass() {
    LintContext ctx;
    ctx.program = &program;
    ctx.tree = &tree;
    ctx.locality = &locality;
    ctx.plan = &plan;
    ctx.deps = &deps;
    ctx.diags = &engine;
    AccessRangePass().Run(ctx);
    engine.SortBySource();
    return engine.Take();
  }
};

TEST(LintDependenceTest, FreshPlanIsRangeClean) {
  DepPlanFixture fx(kNestSource);
  EXPECT_TRUE(fx.RunRangePass().empty());
}

TEST(LintDependenceTest, StarvedAllocationReportsR001) {
  DepPlanFixture fx(kNestSource);
  ASSERT_FALSE(fx.plan.allocate_before_loop.empty());
  // Loop 20's subtree references A and B; one page cannot cover both.
  for (auto& [id, ap] : fx.plan.allocate_before_loop) {
    for (AllocateRequest& req : ap.chain) {
      req.pages = 1;
    }
  }
  std::vector<Diagnostic> diags = fx.RunRangePass();
  ASSERT_TRUE(HasCode(diags, "R001")) << RenderText(diags, "nest");
  const Diagnostic& d = FindCode(diags, "R001");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.pass, "access-range");
  EXPECT_EQ(d.location.line, 4);
  EXPECT_EQ(d.location.column, 7);
  EXPECT_NE(d.message.find("claims 1 page(s) for 2 referenced array(s)"), std::string::npos);
  EXPECT_EQ(d.fixit, "raise X to at least 2 pages");
}

TEST(LintDependenceTest, OverclaimedAllocationReportsR002) {
  DepPlanFixture fx(kNestSource);
  ASSERT_FALSE(fx.plan.allocate_before_loop.empty());
  for (auto& [id, ap] : fx.plan.allocate_before_loop) {
    for (AllocateRequest& req : ap.chain) {
      req.pages = 10000;
    }
  }
  std::vector<Diagnostic> diags = fx.RunRangePass();
  ASSERT_TRUE(HasCode(diags, "R002")) << RenderText(diags, "nest");
  const Diagnostic& d = FindCode(diags, "R002");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("claims 10000 page(s)"), std::string::npos);
  EXPECT_NE(d.message.find("whole access-range footprint"), std::string::npos);
  EXPECT_NE(d.fixit.find("lower X to"), std::string::npos);
}

// Guard-aware bounds narrowing: the stencil pattern that motivated it, plus
// the no-guard control that must keep firing.

TEST(LintDependenceTest, GuardedStencilIsBoundsClean) {
  const char* source =
      "      PROGRAM GRD\n"
      "      PARAMETER (N = 16)\n"
      "      DIMENSION A(N), B(N)\n"
      "      DO 10 I = 1, N\n"
      "        IF (I .GT. 1 .AND. I .LT. 16) A(I) = B(I-1) + B(I+1)\n"
      "   10 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  EXPECT_TRUE(diags.empty()) << RenderText(diags, "grd");
}

TEST(LintDependenceTest, UnguardedStencilStillReportsBounds) {
  const char* source =
      "      PROGRAM UNG\n"
      "      PARAMETER (N = 16)\n"
      "      DIMENSION A(N), B(N)\n"
      "      DO 10 I = 1, N\n"
      "        A(I) = B(I-1) + B(I+1)\n"
      "   10 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  EXPECT_TRUE(HasCode(diags, "B001")) << RenderText(diags, "ung");
  EXPECT_TRUE(HasCode(diags, "B002")) << RenderText(diags, "ung");
}

TEST(LintDependenceTest, GuardOnAnotherVariableDoesNotNarrow) {
  // The guard constrains J, not the subscript variable I: B001 must survive.
  const char* source =
      "      PROGRAM GOV\n"
      "      PARAMETER (N = 16)\n"
      "      DIMENSION A(N), B(N)\n"
      "      DO 20 J = 1, N\n"
      "      DO 10 I = 1, N\n"
      "        IF (J .GT. 1 .AND. J .LT. 16) A(I) = B(I-1)\n"
      "   10 CONTINUE\n"
      "   20 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  EXPECT_TRUE(HasCode(diags, "B001")) << RenderText(diags, "gov");
}

// ---------------------------------------------------------------------------
// Validation diagnostics (V001): the structured view of the estimate
// validator, driven by fabricated rows so the failure path is deterministic.

TEST(LintValidationTest, InadequateEstimateYieldsV001AtTheLoop) {
  Result<CompiledProgram> cp = CompiledProgram::FromSource(kNestSource);
  ASSERT_TRUE(cp.ok());
  std::vector<LoopValidation> rows = ValidateLocalityEstimates(cp.value());
  ASSERT_FALSE(rows.empty());
  // The real estimator is adequate by construction on this nest.
  EXPECT_TRUE(ValidationDiagnostics(cp.value(), rows).empty());

  rows.front().estimated_pages = 0;
  rows.front().max_rereferenced = 3;
  std::vector<Diagnostic> diags = ValidationDiagnostics(cp.value(), rows);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "V001");
  EXPECT_EQ(diags[0].pass, "estimate-validation");
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_TRUE(diags[0].location.IsValid());
  EXPECT_NE(diags[0].message.find("grants X=0"), std::string::npos);
  EXPECT_NE(diags[0].message.find("3 page(s)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Framework plumbing.

TEST(LintFrameworkTest, AllPassesAreRegisteredInCanonicalOrder) {
  const std::vector<const LintPass*>& passes = AllLintPasses();
  ASSERT_EQ(passes.size(), 7u);
  EXPECT_STREQ(passes[0]->name(), "subscript-bounds");
  EXPECT_STREQ(passes[1]->name(), "directive-verifier");
  EXPECT_STREQ(passes[2]->name(), "dead-directive");
  EXPECT_STREQ(passes[3]->name(), "locality-consistency");
  EXPECT_STREQ(passes[4]->name(), "hygiene");
  EXPECT_STREQ(passes[5]->name(), "parallel-independence");
  EXPECT_STREQ(passes[6]->name(), "access-range");
  for (const LintPass* pass : passes) {
    EXPECT_EQ(pass->needs_analysis(), std::string(pass->name()) != "hygiene") << pass->name();
  }
}

TEST(LintFrameworkTest, DiagnosticsComeBackSortedBySourcePosition) {
  // The shadow fixture produces hygiene findings on lines 3 and 4; bounds
  // violations land later. Merge both and check global ordering.
  const char* source =
      "      PROGRAM MIX\n"
      "      PARAMETER (N = 6, K = 3)\n"
      "      DIMENSION A(N), C(N)\n"
      "      DO 10 K = 1, 9\n"
      "        A(K) = 2.0\n"
      "   10 CONTINUE\n"
      "      END\n";
  std::vector<Diagnostic> diags = LintSource(source, DriverOptions());
  ASSERT_GE(diags.size(), 3u) << RenderText(diags, "mix");
  for (size_t i = 1; i < diags.size(); ++i) {
    bool ordered = diags[i - 1].location.line < diags[i].location.line ||
                   (diags[i - 1].location.line == diags[i].location.line &&
                    diags[i - 1].location.column <= diags[i].location.column);
    EXPECT_TRUE(ordered) << diags[i - 1].ToString() << " vs " << diags[i].ToString();
  }
  EXPECT_TRUE(HasCode(diags, "H001"));
  EXPECT_TRUE(HasCode(diags, "H002"));
  EXPECT_TRUE(HasCode(diags, "B002"));
}

}  // namespace
}  // namespace cdmm
