#include <gtest/gtest.h>

#include <sstream>

#include "src/support/check.h"
#include "src/support/result.h"
#include "src/support/rng.h"
#include "src/support/source_location.h"
#include "src/support/stats.h"
#include "src/support/str.h"
#include "src/support/table.h"

namespace cdmm {
namespace {

TEST(StrTest, StrCatConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StrTest, FormatFixed) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(2.0, 0), "2");
  EXPECT_EQ(FormatFixed(-1.005, 1), "-1.0");
}

TEST(StrTest, FormatMillions) {
  EXPECT_EQ(FormatMillions(3.39e6), "3.39");
  EXPECT_EQ(FormatMillions(20.5e6, 1), "20.5");
}

TEST(StrTest, IsBlank) {
  EXPECT_TRUE(IsBlank(""));
  EXPECT_TRUE(IsBlank("  \t "));
  EXPECT_FALSE(IsBlank(" x "));
}

TEST(StrTest, ToUpperAscii) {
  EXPECT_EQ(ToUpperAscii("FoRtRaN 77"), "FORTRAN 77");
}

TEST(SourceLocationTest, ToString) {
  EXPECT_EQ(ToString(SourceLocation{3, 14}), "3:14");
  EXPECT_EQ(ToString(SourceLocation{}), "?");
  EXPECT_FALSE(SourceLocation{}.IsValid());
  EXPECT_TRUE((SourceLocation{1, 1}).IsValid());
}

TEST(ResultTest, HoldsValueOrError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err(Error{"boom", SourceLocation{2, 5}});
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().ToString(), "2:5: boom");
}

TEST(ResultTest, ErrorWithoutLocation) {
  Error e{"plain", {}};
  EXPECT_EQ(e.ToString(), "plain");
}

TEST(ResultTest, AccessingWrongSideDies) {
  Result<int> err(Error{"boom", {}});
  EXPECT_DEATH(err.value(), "boom");
}

TEST(CheckTest, PassingCheckIsSilent) {
  CDMM_CHECK(1 + 1 == 2);
  CDMM_CHECK_MSG(true, "never printed");
}

TEST(CheckTest, FailingCheckAborts) {
  EXPECT_DEATH(CDMM_CHECK(false), "CDMM_CHECK failed");
  EXPECT_DEATH(CDMM_CHECK_MSG(false, "context " << 42), "context 42");
}

TEST(StatsTest, SummaryStats) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.Add(1.0);
  s.Add(5.0);
  s.Add(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

TEST(StatsTest, TimeWeightedLevel) {
  TimeWeightedLevel l;
  l.SetLevel(2.0);
  l.Advance(10);
  l.SetLevel(4.0);
  l.Advance(5);
  EXPECT_DOUBLE_EQ(l.integral(), 2.0 * 10 + 4.0 * 5);
  EXPECT_EQ(l.elapsed(), 15u);
  EXPECT_DOUBLE_EQ(l.mean_level(), 40.0 / 15.0);
}

TEST(RngTest, DeterministicAcrossInstances) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundedValues) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(TableTest, RendersAlignedCells) {
  TextTable t({"Name", "Value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22.5"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| Name "), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric cells right-align: "22.5" is padded on the left.
  EXPECT_NE(out.find(" 22.5 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, RuleInsertsSeparator) {
  TextTable t({"A"});
  t.AddRow({"1"});
  t.AddRule();
  t.AddRow({"2"});
  std::ostringstream os;
  t.Print(os);
  // header rule + top + bottom + the inserted one = 4 dashed lines.
  int rules = 0;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) {
    rules += line.rfind("+-", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TableTest, MismatchedRowDies) {
  TextTable t({"A", "B"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "cells");
}

}  // namespace
}  // namespace cdmm
