// Cross-validation suite for the analytic locality engine: every curve it
// produces must be bit-identical to the one-pass engines run on the fully
// expanded trace — on all builtin workloads, on randomized affine nests, on
// the checked-in workloads/*.f sources, and under fault injection. The
// non-affine fixtures additionally pin the bounded-error OPT envelope:
// true OPT always lies inside [lower_faults, upper(m)] and max_error is the
// worst half-width actually observed.
#include "src/analysis/analytic_locality.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/loop_tree.h"
#include "src/exec/sweep_scheduler.h"
#include "src/interp/interpreter.h"
#include "src/interp/rle_generator.h"
#include "src/lang/ast.h"
#include "src/robust/fault_injector.h"
#include "src/support/rng.h"
#include "src/vm/sweep_engines.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

std::vector<Workload> AllSixteen() {
  std::vector<Workload> all = AllWorkloads();
  for (const Workload& w : ExtendedWorkloads()) {
    all.push_back(w);
  }
  return all;
}

// Tau grid with the edges the sparse evaluators care about (tiny windows,
// r/2, exactly r, past the end), on top of the log-spaced default grid.
std::vector<uint64_t> TestTaus(uint64_t r) {
  std::vector<uint64_t> taus = DefaultTauGrid(std::max<uint64_t>(r, 1), 3);
  for (uint64_t tau : {uint64_t{1}, uint64_t{2}, uint64_t{3}, r / 2 + 1, std::max<uint64_t>(r, 1),
                       r + 10}) {
    taus.push_back(tau);
  }
  return taus;
}

uint32_t TestFrames(const Trace& flat) {
  return std::max(1u, std::min(flat.virtual_pages(), 48u));
}

// Expands the program both ways and asserts the analytic curves are
// bit-identical to the one-pass engines on the flat trace.
void CrossValidate(const Program& program, const std::string& label,
                   const SimOptions& options = {}) {
  LoopTree tree(program);
  Trace flat = GenerateTrace(program, tree, /*plan=*/nullptr);
  std::shared_ptr<const AnalyticLocality> model = AnalyticLocality::Build(GenerateLoopRle(program));

  ASSERT_EQ(model->total_refs(), flat.reference_count()) << label;
  ASSERT_EQ(model->virtual_pages(), flat.virtual_pages()) << label;

  std::vector<uint64_t> taus = TestTaus(flat.reference_count());
  std::vector<SweepPoint> analytic_ws = model->WsSweep(taus, options);
  std::vector<SweepPoint> onepass_ws = OnePassWsSweep(flat, taus, options);
  ASSERT_EQ(analytic_ws, onepass_ws) << label;
  ASSERT_EQ(FingerprintSweep(analytic_ws), FingerprintSweep(onepass_ws)) << label;

  uint32_t max_frames = TestFrames(flat);
  std::vector<SweepPoint> analytic_opt = model->OptSweep(max_frames, options);
  std::vector<SweepPoint> onepass_opt = OnePassOptSweep(flat, max_frames, options);
  ASSERT_EQ(analytic_opt, onepass_opt) << label;
  ASSERT_EQ(FingerprintSweep(analytic_opt), FingerprintSweep(onepass_opt)) << label;
}

TEST(AnalyticTest, ExpandMatchesInterpreterOnAllBuiltins) {
  for (const Workload& w : AllSixteen()) {
    Program program = ParseWorkload(w);
    LoopTree tree(program);
    Trace flat = GenerateTrace(program, tree, /*plan=*/nullptr);
    LoopRleTrace rle = GenerateLoopRle(program);
    Trace expanded = rle.Expand();
    ASSERT_EQ(expanded.virtual_pages(), flat.virtual_pages()) << w.name;
    ASSERT_EQ(expanded.events(), flat.events()) << w.name;
    ASSERT_EQ(rle.total_refs(), flat.reference_count()) << w.name;
  }
}

TEST(AnalyticTest, CurvesBitIdenticalOnAllBuiltins) {
  for (const Workload& w : AllSixteen()) {
    CrossValidate(ParseWorkload(w), w.name);
  }
}

TEST(AnalyticTest, CurvesBitIdenticalUnderFaultInjection) {
  FaultInjector injector(FaultInjectionConfig::AtIntensity(17, 0.5));
  SimOptions options;
  options.injector = &injector;
  for (const char* name : {"MAIN", "TQL", "GATHER"}) {
    CrossValidate(ParseWorkload(FindWorkload(name)), name, options);
  }
}

TEST(AnalyticTest, CurvesBitIdenticalOnWorkloadFiles) {
  for (const char* name : {"approx", "conduct", "fdjac", "field", "gaussj", "hwscrt", "hybrj",
                           "init", "main", "poissn", "tql", "tred"}) {
    std::ifstream file(std::string(CDMM_SOURCE_DIR) + "/workloads/" + name + ".f");
    ASSERT_TRUE(file.is_open()) << name;
    std::stringstream buffer;
    buffer << file.rdbuf();
    std::string src = buffer.str();
    Workload w{name, "file", src.c_str()};
    CrossValidate(ParseWorkload(w), name);
  }
}

// --- Randomized affine nest generator -------------------------------------
//
// Emits fixed-form sources exercising the fold machinery's interesting
// shapes: nest depths 1-3, forward/backward/stride-2 bounds, subscript
// offsets, constant column picks, scalar statements (fold-harmless), loop
// vars tested in IF conditions (statically unfoldable but still affine and
// exact), and an optional foldable outer time loop.
class AffineNestGen {
 public:
  explicit AffineNestGen(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    src_.clear();
    label_ = 10;
    Line("      PROGRAM RAND");
    Line("      DIMENSION A(40,40), B(40,40), V(400), W(400)");
    int depth = 1 + static_cast<int>(rng_.NextBelow(3));
    bool time_loop = rng_.NextBelow(2) == 0;
    std::vector<std::string> vars;
    std::vector<int> close_labels;
    if (time_loop) {
      close_labels.push_back(OpenLoop("T", 1, 1 + static_cast<int>(rng_.NextBelow(6)), 1));
    }
    static const char* kVars[] = {"I", "J", "K"};
    for (int d = 0; d < depth; ++d) {
      int lo = 3, hi = 3 + static_cast<int>(rng_.NextBelow(14)), step = 1;
      switch (rng_.NextBelow(4)) {
        case 0:
          step = 2;  // stride-2 forward
          break;
        case 1:
          std::swap(lo, hi);  // backward
          step = -1;
          break;
        default:
          break;  // unit stride forward
      }
      close_labels.push_back(OpenLoop(kVars[d], lo, hi, step));
      vars.push_back(kVars[d]);
    }
    int stmts = 1 + static_cast<int>(rng_.NextBelow(3));
    for (int s = 0; s < stmts; ++s) {
      EmitStatement(vars);
    }
    while (!close_labels.empty()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%5d CONTINUE", close_labels.back());
      Line(buf);
      close_labels.pop_back();
    }
    Line("      END");
    return src_;
  }

 private:
  void Line(const std::string& text) { src_ += text + "\n"; }

  int OpenLoop(const std::string& var, int lo, int hi, int step) {
    int label = label_;
    label_ += 10;
    std::ostringstream os;
    os << "      DO " << label << " " << var << " = " << lo << ", " << hi;
    if (step != 1) {
      os << ", " << step;
    }
    Line(os.str());
    return label;
  }

  // var + offset, kept inside [1, 40] for loop ranges within [3, 17].
  std::string Sub(const std::vector<std::string>& vars) {
    if (vars.empty()) {
      return std::to_string(1 + rng_.NextBelow(38));
    }
    const std::string& v = vars[rng_.NextBelow(vars.size())];
    int offset = static_cast<int>(rng_.NextBelow(5)) - 2;
    if (offset == 0) {
      return v;
    }
    std::ostringstream os;
    os << v << (offset > 0 ? "+" : "-") << std::abs(offset);
    return os.str();
  }

  void EmitStatement(const std::vector<std::string>& vars) {
    std::ostringstream os;
    os << "      ";
    switch (rng_.NextBelow(5)) {
      case 0:
        os << "A(" << Sub(vars) << "," << Sub(vars) << ") = B(" << Sub(vars) << "," << Sub(vars)
           << ") + A(" << Sub(vars) << "," << Sub(vars) << ") * 0.5";
        break;
      case 1:
        os << "V(" << Sub(vars) << ") = V(" << Sub(vars) << ") + W(" << Sub(vars) << ") * 2.0";
        break;
      case 2:
        os << "S = S + 1.0";  // scalar: no refs, must not block folding
        break;
      case 3:
        // Loop variable inside the condition: statically unfoldable, and the
        // guard truly varies per iteration — exactness must survive both.
        if (!vars.empty()) {
          os << "IF (" << vars.back() << " .GT. 9) W(" << Sub(vars) << ") = V(" << Sub(vars)
             << ") + 1.0";
        } else {
          os << "W(3) = V(5) + 1.0";
        }
        break;
      default:
        os << "B(" << Sub(vars) << "," << Sub(vars) << ") = V(" << Sub(vars) << ") * 0.25";
        break;
    }
    Line(os.str());
  }

  SplitMix64 rng_;
  std::string src_;
  int label_ = 10;
};

TEST(AnalyticTest, RandomizedAffineNestsCrossValidate) {
  for (uint64_t seed = 1; seed <= 14; ++seed) {
    AffineNestGen gen(seed);
    std::string source = gen.Generate();
    Workload w{"RAND", "randomized affine nest", source.c_str()};
    Program program = ParseWorkload(w);
    ASSERT_TRUE(IsAffineProgram(program)) << "seed " << seed << "\n" << source;
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + source);
    CrossValidate(program, "RAND");
  }
}

// Trip counts 1..7 hit every boundary of the fold machinery: 1 (no fold),
// 2-3 (OPT expands fully), 4 (first snapshot/marker use), and beyond.
TEST(AnalyticTest, TripCountEdgeCasesCrossValidate) {
  for (int trip : {1, 2, 3, 4, 5, 7}) {
    std::ostringstream os;
    os << "      PROGRAM EDGE\n"
       << "      DIMENSION A(40,2), V(90)\n"
       << "      DO 20 T = 1, " << trip << "\n"
       << "        DO 10 I = 2, 39\n"
       << "          A(I,1) = A(I-1,2) + V(I+3)\n"
       << "   10   CONTINUE\n"
       << "   20 CONTINUE\n"
       << "      END\n";
    std::string src = os.str();
    Workload w{"EDGE", "trip edge", src.c_str()};
    CrossValidate(ParseWorkload(w), "trip " + std::to_string(trip));
  }
}

// --- Non-affine fixtures ---------------------------------------------------

constexpr char kScatterSource[] = R"(
      PROGRAM SCATTR
      PARAMETER (N = 40)
      INTEGER IDX(N)
      DIMENSION A(N), B(N,2)
      DO 10 I = 1, N
        IDX(I) = MOD(I * 13, N) + 1
   10 CONTINUE
      DO 30 T = 1, 6
        DO 20 I = 1, N
          B(IDX(I),1) = B(IDX(I),2) + A(I)
          IDX(I) = MOD(IDX(I) * 5 + T, N) + 1
   20   CONTINUE
   30 CONTINUE
      END
)";

TEST(AnalyticTest, NonAffineStillExact) {
  for (const auto& [name, source] :
       std::vector<std::pair<std::string, std::string>>{
           {"GATHER", FindWorkload("GATHER").source}, {"SCATTR", kScatterSource}}) {
    Workload w{name, "non-affine", source.c_str()};
    Program program = ParseWorkload(w);
    EXPECT_FALSE(IsAffineProgram(program)) << name;
    LoopRleTrace rle = GenerateLoopRle(program);
    EXPECT_FALSE(rle.stats().affine) << name;
    CrossValidate(program, name);
  }
}

TEST(AnalyticTest, OptBoundsEnvelopeHoldsOnNonAffine) {
  for (const auto& [name, source] :
       std::vector<std::pair<std::string, std::string>>{
           {"GATHER", FindWorkload("GATHER").source}, {"SCATTR", kScatterSource}}) {
    Workload w{name, "non-affine", source.c_str()};
    Program program = ParseWorkload(w);
    std::shared_ptr<const AnalyticLocality> model =
        AnalyticLocality::Build(GenerateLoopRle(program));
    uint32_t max_frames = std::max(1u, std::min(model->virtual_pages(), 48u));
    std::vector<SweepPoint> exact = model->OptSweep(max_frames);
    AnalyticLocality::OptBounds bounds = model->OptBoundsSweep(max_frames);
    ASSERT_EQ(bounds.upper.size(), exact.size()) << name;
    uint64_t worst = 0;
    for (size_t i = 0; i < exact.size(); ++i) {
      // True OPT lies inside the reported envelope for every m.
      EXPECT_GE(exact[i].faults, bounds.lower_faults) << name << " m=" << i + 1;
      EXPECT_LE(exact[i].faults, bounds.upper[i].faults) << name << " m=" << i + 1;
      worst = std::max(worst, bounds.upper[i].faults - bounds.lower_faults);
    }
    EXPECT_EQ(bounds.max_error, worst) << name;
    // The envelope is tight at full residency: LRU and OPT both fault only
    // on compulsory misses once every page fits.
    EXPECT_EQ(bounds.upper.back().faults, bounds.lower_faults) << name;
    EXPECT_EQ(exact.back().faults, bounds.lower_faults) << name;
  }
}

// --- Fold effectiveness & trace-length independence ------------------------

TEST(AnalyticTest, FoldsApplyOnBuiltins) {
  LoopRleTrace rle = GenerateLoopRle(ParseWorkload(FindWorkload("INIT")));
  EXPECT_TRUE(rle.stats().affine);
  EXPECT_GT(rle.stats().folds_applied, 0u);
  EXPECT_GT(rle.stats().foldable_loops, 0u);
}

// A 5.76e9-reference time loop: far past what a flat Trace can hold (its
// event count is 32-bit), yet the analytic model stores a few hundred pages
// and answers both sweeps instantly with sane curves.
TEST(AnalyticTest, BillionReferenceTimeLoop) {
  constexpr char kSource[] = R"(
      PROGRAM BIGT
      DIMENSION A(64,4)
      DO 20 T = 1, 30000000
        DO 10 I = 1, 64
          A(I,1) = A(I,2) + A(I,3)
   10   CONTINUE
   20 CONTINUE
      END
)";
  Workload w{"BIGT", "billion-reference time loop", kSource};
  std::shared_ptr<const AnalyticLocality> model =
      AnalyticLocality::Build(GenerateLoopRle(ParseWorkload(w)));
  EXPECT_EQ(model->total_refs(), 30'000'000ull * 64 * 3);
  EXPECT_GT(model->total_refs(), uint64_t{UINT32_MAX});
  EXPECT_TRUE(model->affine());
  // Only the time loop folds (the inner loop's subscripts use its own
  // variable, so its iterations differ) — and that single fold is what
  // buys the 30-million-fold compression.
  EXPECT_EQ(model->stats().folds_applied, 1u);
  EXPECT_LT(model->rle().stored_pages(), size_t{1000});

  uint64_t r = model->total_refs();
  std::vector<uint64_t> taus = {1, 1000, r};
  std::vector<SweepPoint> ws = model->WsSweep(taus);
  ASSERT_EQ(ws.size(), taus.size());
  // Distinct pages = 3 columns of A (64 reals fill one 256-byte page).
  uint64_t cold = model->distinct_pages();
  EXPECT_EQ(cold, 3u);
  EXPECT_EQ(ws[2].faults, cold);       // window covers the whole trace
  EXPECT_GE(ws[0].faults, ws[1].faults);
  EXPECT_LE(ws[0].faults, r);
  for (const SweepPoint& p : ws) {
    EXPECT_GE(p.faults, cold);
    EXPECT_GT(p.mean_memory, 0.0);
    EXPECT_LE(p.mean_memory, 4.0);
  }

  std::vector<SweepPoint> opt = model->OptSweep(4);
  ASSERT_EQ(opt.size(), 4u);
  for (size_t i = 1; i < opt.size(); ++i) {
    EXPECT_LE(opt[i].faults, opt[i - 1].faults);
  }
  EXPECT_EQ(opt.back().faults, cold);  // full residency: compulsory only
}

// The chunked streaming fallback visits the same reference string the flat
// trace holds, in bounded memory.
TEST(AnalyticTest, ChunkedStreamingMatchesExpansion) {
  LoopRleTrace rle = GenerateLoopRle(ParseWorkload(FindWorkload("FIELD")));
  Trace flat = rle.Expand();
  std::vector<PageId> streamed;
  size_t max_chunk = 0;
  rle.ForEachChunk(64, [&](const PageId* data, size_t n) {
    max_chunk = std::max(max_chunk, n);
    streamed.insert(streamed.end(), data, data + n);
  });
  EXPECT_LE(max_chunk, size_t{64});
  ASSERT_EQ(streamed.size(), flat.reference_count());
  size_t i = 0;
  for (const TraceEvent& e : flat.events()) {
    ASSERT_EQ(streamed[i++], e.value);
  }
}

// The scheduler's analytic entry points return the same points as its
// trace-based Ws/Opt — at any engine setting, since both paths bottom out
// in the shared point makers.
TEST(AnalyticTest, SchedulerAnalyticEntryPointsMatch) {
  Program program = ParseWorkload(FindWorkload("FIELD"));
  LoopTree tree(program);
  auto refs = std::make_shared<const Trace>(GenerateTrace(program, tree, /*plan=*/nullptr));
  std::shared_ptr<const AnalyticLocality> model = AnalyticLocality::Build(GenerateLoopRle(program));

  SweepScheduler sched(nullptr, SweepEngine::kAnalytic);
  std::vector<uint64_t> taus = TestTaus(refs->reference_count());
  EXPECT_EQ(sched.AnalyticWs(*model, taus), sched.Ws(refs, taus));
  uint32_t max_frames = TestFrames(*refs);
  EXPECT_EQ(sched.AnalyticOpt(*model, max_frames), sched.Opt(refs, max_frames));

  SweepScheduler naive(nullptr, SweepEngine::kNaive);
  EXPECT_EQ(sched.AnalyticOpt(*model, max_frames), naive.Opt(refs, max_frames));
}

}  // namespace
}  // namespace cdmm
