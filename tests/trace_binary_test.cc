#include <gtest/gtest.h>

#include <sstream>

#include "src/cdmm/pipeline.h"
#include "src/trace/trace_io.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

Trace SampleTrace() {
  Trace t("BINSAMPLE");
  t.set_virtual_pages(300);
  DirectiveRecord alloc;
  alloc.kind = DirectiveRecord::Kind::kAllocate;
  alloc.loop_id = 7;
  alloc.requests = {AllocateRequest{3, 250}, AllocateRequest{1, 2}};
  t.AddDirective(alloc);
  t.AddLoopEnter(7);
  for (PageId p = 0; p < 200; ++p) {
    t.AddRef(p);
    t.AddRef(p);
  }
  DirectiveRecord lock;
  lock.kind = DirectiveRecord::Kind::kLock;
  lock.loop_id = 7;
  lock.lock_priority = 2;
  lock.pages = {0, 128, 299};
  t.AddDirective(lock);
  DirectiveRecord unlock;
  unlock.kind = DirectiveRecord::Kind::kUnlock;
  unlock.loop_id = 7;
  unlock.pages = {0, 128, 299};
  t.AddDirective(unlock);
  t.AddLoopExit(7);
  return t;
}

TEST(TraceBinaryTest, RoundTrip) {
  Trace original = SampleTrace();
  std::stringstream ss;
  WriteTraceBinary(original, ss);
  auto parsed = ReadTraceBinary(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed.value(), original);
}

TEST(TraceBinaryTest, MuchSmallerThanText) {
  Trace t = SampleTrace();
  std::stringstream binary;
  WriteTraceBinary(t, binary);
  std::string text = TraceToString(t);
  EXPECT_LT(binary.str().size() * 2, text.size());
}

TEST(TraceBinaryTest, ReadAnySniffsBothFormats) {
  Trace t = SampleTrace();
  {
    std::stringstream ss;
    WriteTraceBinary(t, ss);
    auto parsed = ReadAnyTrace(ss);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), t);
  }
  {
    std::stringstream ss;
    WriteTrace(t, ss);
    auto parsed = ReadAnyTrace(ss);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), t);
  }
}

TEST(TraceBinaryTest, RejectsBadMagic) {
  std::stringstream ss;
  ss << "XXXX garbage";
  auto parsed = ReadTraceBinary(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("magic"), std::string::npos);
}

TEST(TraceBinaryTest, RejectsTruncatedStream) {
  Trace t = SampleTrace();
  std::stringstream ss;
  WriteTraceBinary(t, ss);
  std::string data = ss.str();
  std::stringstream truncated(data.substr(0, data.size() / 2));
  auto parsed = ReadTraceBinary(truncated);
  EXPECT_FALSE(parsed.ok());
}

TEST(TraceBinaryTest, RejectsBadVersion) {
  std::stringstream ss;
  ss << "CDMB" << '\x07';
  auto parsed = ReadTraceBinary(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("version"), std::string::npos);
}

TEST(TraceBinaryTest, EmptyTraceRoundTrips) {
  Trace t("EMPTY");
  std::stringstream ss;
  WriteTraceBinary(t, ss);
  auto parsed = ReadTraceBinary(ss);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), t);
}

TEST(TraceBinaryTest, WorkloadTraceRoundTrips) {
  auto cp = CompiledProgram::FromSource(FindWorkload("INIT").source);
  ASSERT_TRUE(cp.ok());
  const Trace& t = cp.value().trace();
  std::stringstream ss;
  WriteTraceBinary(t, ss);
  auto parsed = ReadTraceBinary(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed.value(), t);
}

}  // namespace
}  // namespace cdmm
