#include "src/vm/stack_distance.h"

#include <gtest/gtest.h>

#include <list>

#include "src/support/rng.h"

namespace cdmm {
namespace {

// Naive reference implementation: an explicit LRU stack walked per touch.
class NaiveStack {
 public:
  uint32_t Touch(PageId page) {
    uint32_t depth = 0;
    for (auto it = stack_.begin(); it != stack_.end(); ++it) {
      ++depth;
      if (*it == page) {
        stack_.erase(it);
        stack_.push_front(page);
        return depth;
      }
    }
    stack_.push_front(page);
    return 0;  // cold
  }

 private:
  std::list<PageId> stack_;
};

TEST(StackDistanceTest, HandSequence) {
  StackDistanceEngine engine(16);
  EXPECT_EQ(engine.Next(1).depth, 0u);  // cold
  EXPECT_EQ(engine.Next(2).depth, 0u);
  EXPECT_EQ(engine.Next(1).depth, 2u);  // one distinct page (2) in between
  EXPECT_EQ(engine.Next(1).depth, 1u);  // immediate re-use
  EXPECT_EQ(engine.Next(3).depth, 0u);
  EXPECT_EQ(engine.Next(2).depth, 3u);  // 1 and 3 in between
}

TEST(StackDistanceTest, PreviousPositionsReported) {
  StackDistanceEngine engine(8);
  engine.Next(5);                       // position 1
  engine.Next(6);                       // position 2
  auto touch = engine.Next(5);          // position 3
  EXPECT_EQ(touch.previous, 1u);
  EXPECT_EQ(engine.position(), 3u);
}

TEST(StackDistanceTest, MatchesNaiveOnRandomTrace) {
  SplitMix64 rng(99);
  StackDistanceEngine engine(20000);
  NaiveStack naive;
  for (int i = 0; i < 20000; ++i) {
    PageId page = static_cast<PageId>(rng.NextDouble() < 0.7 ? rng.NextBelow(8)
                                                             : rng.NextBelow(120));
    EXPECT_EQ(engine.Next(page).depth, naive.Touch(page)) << "at reference " << i;
  }
}

// Regression: feeding more references than the declared capacity used to
// CHECK-fail; now the Fenwick tree regrows with a doubling rebuild. This
// exact sequence tripped the old CHECK on the third Next().
TEST(StackDistanceTest, GrowsPastDeclaredCapacity) {
  StackDistanceEngine engine(2);
  EXPECT_EQ(engine.Next(0).depth, 0u);
  EXPECT_EQ(engine.Next(1).depth, 0u);
  EXPECT_EQ(engine.Next(2).depth, 0u);  // previously: CHECK failure here
  EXPECT_EQ(engine.Next(0).depth, 3u);
  EXPECT_EQ(engine.Next(2).depth, 2u);
}

TEST(StackDistanceTest, GrowthMatchesNaiveAndExactlySizedEngine) {
  SplitMix64 rng(7);
  StackDistanceEngine tiny(1);       // forced through many regrowth rebuilds
  StackDistanceEngine sized(30000);  // never regrows
  NaiveStack naive;
  for (int i = 0; i < 30000; ++i) {
    PageId page = static_cast<PageId>(rng.NextDouble() < 0.6 ? rng.NextBelow(16)
                                                             : rng.NextBelow(400));
    uint32_t expected = naive.Touch(page);
    StackDistanceEngine::Touch a = tiny.Next(page);
    StackDistanceEngine::Touch b = sized.Next(page);
    ASSERT_EQ(a.depth, expected) << "at reference " << i;
    ASSERT_EQ(a.depth, b.depth) << "at reference " << i;
    ASSERT_EQ(a.previous, b.previous) << "at reference " << i;
  }
}

}  // namespace
}  // namespace cdmm
