#include "src/lang/sema.h"

#include <gtest/gtest.h>

#include "src/lang/parser.h"

namespace cdmm {
namespace {

std::string CheckError(std::string_view source) {
  auto program = Parse(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().ToString());
  auto err = CheckProgram(program.value());
  EXPECT_TRUE(err.has_value()) << "expected a semantic error";
  return err.has_value() ? err->ToString() : "";
}

void CheckOk(std::string_view source) {
  auto program = ParseAndCheck(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().ToString());
}

TEST(SemaTest, AcceptsWellFormedProgram) {
  CheckOk(R"(
      PROGRAM P
      PARAMETER (N = 4)
      DIMENSION A(N,N), V(N)
      DO 20 J = 1, N
        V(J) = 0.0
        DO 10 I = 1, N
          A(I,J) = V(I) + V(J)
   10   CONTINUE
   20 CONTINUE
      END
)");
}

TEST(SemaTest, UndeclaredArray) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION A(4)
      A(1) = B(1)
      END
)");
  EXPECT_NE(err.find("undeclared array B"), std::string::npos);
}

TEST(SemaTest, DuplicateArrayDeclaration) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION A(4), A(5)
      END
)");
  EXPECT_NE(err.find("declared more than once"), std::string::npos);
}

TEST(SemaTest, ArrayNameCollidesWithParameter) {
  std::string err = CheckError(R"(
      PROGRAM P
      PARAMETER (A = 4)
      DIMENSION A(4)
      END
)");
  EXPECT_NE(err.find("both an array and a PARAMETER"), std::string::npos);
}

TEST(SemaTest, VectorUsedWithTwoSubscripts) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION V(4)
      V(1,2) = 0.0
      END
)");
  EXPECT_NE(err.find("referenced with 2 subscript"), std::string::npos);
}

TEST(SemaTest, MatrixUsedWithOneSubscript) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION A(4,4)
      A(1) = 0.0
      END
)");
  EXPECT_NE(err.find("referenced with 1 subscript"), std::string::npos);
}

TEST(SemaTest, UnboundSubscriptVariable) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION V(4)
      V(I) = 0.0
      END
)");
  EXPECT_NE(err.find("not bound by an enclosing DO"), std::string::npos);
}

TEST(SemaTest, SubscriptVariableFromSiblingLoopIsUnbound) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION V(4)
      DO 10 I = 1, 4
        V(I) = 0.0
   10 CONTINUE
      DO 20 J = 1, 4
        V(I) = 1.0
   20 CONTINUE
      END
)");
  EXPECT_NE(err.find("not bound"), std::string::npos);
}

TEST(SemaTest, LoopVariableReuseRejected) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION A(4,4)
      DO 20 I = 1, 4
        DO 10 I = 1, 4
          A(I,I) = 0.0
   10   CONTINUE
   20 CONTINUE
      END
)");
  EXPECT_NE(err.find("reused by an enclosing DO"), std::string::npos);
}

TEST(SemaTest, LoopVariableCollidingWithArrayName) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION A(4)
      DO 10 A = 1, 4
        CONTINUE
   10 CONTINUE
      END
)");
  EXPECT_NE(err.find("collides with an array name"), std::string::npos);
}

TEST(SemaTest, ArrayAssignedWithoutSubscripts) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION A(4)
      A = 0.0
      END
)");
  EXPECT_NE(err.find("assigned without subscripts"), std::string::npos);
}

TEST(SemaTest, ArrayReadWithoutSubscripts) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION A(4)
      X = A
      END
)");
  EXPECT_NE(err.find("used without subscripts"), std::string::npos);
}

TEST(SemaTest, VariableLoopBoundMustBeEnclosing) {
  std::string err = CheckError(R"(
      PROGRAM P
      DIMENSION A(4)
      DO 10 I = 1, K
        A(I) = 0.0
   10 CONTINUE
      END
)");
  EXPECT_NE(err.find("neither a PARAMETER nor an enclosing loop variable"), std::string::npos);
}

TEST(SemaTest, TriangularBoundFromEnclosingLoopAccepted) {
  CheckOk(R"(
      PROGRAM P
      DIMENSION A(4,4)
      DO 20 J = 1, 4
        DO 10 I = J, 4
          A(I,J) = 0.0
   10   CONTINUE
   20 CONTINUE
      END
)");
}

TEST(SemaTest, ScalarNamesDoNotCollideAcrossUses) {
  CheckOk(R"(
      PROGRAM P
      DIMENSION V(4)
      ACC = 0.0
      DO 10 I = 1, 4
        ACC = ACC + V(I)
   10 CONTINUE
      END
)");
}

}  // namespace
}  // namespace cdmm
