#include "src/vm/curves.h"

#include <gtest/gtest.h>

#include "src/support/ascii_plot.h"
#include "src/support/rng.h"
#include "src/vm/working_set.h"

namespace cdmm {
namespace {

Trace MakeTrace(const std::vector<PageId>& pages) {
  Trace t("test");
  uint32_t v = 0;
  for (PageId p : pages) {
    v = std::max(v, p + 1);
  }
  t.set_virtual_pages(v);
  for (PageId p : pages) {
    t.AddRef(p);
  }
  return t;
}

Trace HotColdTrace() {
  SplitMix64 rng(17);
  std::vector<PageId> seq;
  for (int i = 0; i < 8000; ++i) {
    seq.push_back(rng.NextDouble() < 0.8 ? static_cast<PageId>(rng.NextBelow(4))
                                         : static_cast<PageId>(rng.NextBelow(40)));
  }
  return MakeTrace(seq);
}

TEST(CurvesTest, LifetimeIsNonDecreasingInAllocation) {
  Trace t = HotColdTrace();
  auto curve = LifetimeCurve(t, t.virtual_pages());
  ASSERT_EQ(curve.size(), t.virtual_pages());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].y, curve[i - 1].y - 1e-9);
  }
  EXPECT_DOUBLE_EQ(curve.front().x, 1.0);
}

TEST(CurvesTest, FaultRateComplementsLifetime) {
  Trace t = HotColdTrace();
  auto life = LifetimeCurve(t, 20);
  auto rate = FaultRateCurve(t, 20);
  ASSERT_EQ(life.size(), rate.size());
  for (size_t i = 0; i < life.size(); ++i) {
    if (rate[i].y > 0) {
      EXPECT_NEAR(life[i].y * rate[i].y, 1.0, 1e-9);
    }
  }
}

TEST(CurvesTest, WsSizeCurveGrowsWithTau) {
  Trace t = HotColdTrace();
  auto curve = WsSizeCurve(t, {1, 10, 100, 1000, 8000});
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].y, curve[i - 1].y);
  }
}

TEST(CurvesTest, WsFaultRateFallsWithTau) {
  Trace t = HotColdTrace();
  auto curve = WsFaultRateCurve(t, {1, 10, 100, 1000, 8000});
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].y, curve[i - 1].y + 1e-12);
  }
}

TEST(CurvesTest, KneeSitsAtTheHotSetWhenColdMissesAreCompulsory) {
  // A re-referenced hot set of 5 pages plus a single-touch cold stream:
  // allocations beyond the hot set cannot avoid the compulsory stream
  // faults, so max g(m)/m lands at the hot-set size.
  std::vector<PageId> seq;
  PageId cold = 5;
  for (int i = 0; i < 500; ++i) {
    for (int pass = 0; pass < 10; ++pass) {
      for (PageId h = 0; h < 5; ++h) {
        seq.push_back(h);
      }
    }
    seq.push_back(cold++);  // fresh page, never re-referenced
  }
  Trace t = MakeTrace(seq);
  auto life = LifetimeCurve(t, 64);
  uint32_t knee = LifetimeKnee(life);
  EXPECT_GE(knee, 5u);
  EXPECT_LE(knee, 7u);
}

TEST(AsciiPlotTest, RendersSeriesAndLabels) {
  PlotSeries s{"demo", '*', {{1, 1}, {2, 4}, {3, 9}}};
  PlotOptions options;
  options.title = "squares";
  options.x_label = "x";
  std::string out = RenderAsciiPlot({s}, options);
  EXPECT_NE(out.find("squares"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);  // axis corner
}

TEST(AsciiPlotTest, EmptySeriesHandled) {
  std::string out = RenderAsciiPlot({PlotSeries{"empty", '*', {}}}, PlotOptions{});
  EXPECT_NE(out.find("no plottable points"), std::string::npos);
}

TEST(AsciiPlotTest, LogAxisSkipsNonPositive) {
  PlotSeries s{"mixed", '*', {{0, 5}, {10, 5}, {100, 5}}};
  PlotOptions options;
  options.log_x = true;
  std::string out = RenderAsciiPlot({s}, options);
  // Two plottable points remain; rendering succeeds.
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, OverlapsMarkedWithHash) {
  PlotSeries a{"a", '*', {{1, 1}, {2, 2}}};
  PlotSeries b{"b", 'o', {{1, 1}}};
  std::string out = RenderAsciiPlot({a, b}, PlotOptions{});
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace cdmm
