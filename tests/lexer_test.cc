#include "src/lang/lexer.h"

#include <gtest/gtest.h>

namespace cdmm {
namespace {

std::vector<Token> LexOk(std::string_view source) {
  auto tokens = Lex(source);
  EXPECT_TRUE(tokens.ok()) << tokens.error().ToString();
  return tokens.value();
}

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> kinds;
  kinds.reserve(tokens.size());
  for (const Token& t : tokens) {
    kinds.push_back(t.kind);
  }
  return kinds;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = LexOk("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, BlankLinesCollapse) {
  auto tokens = LexOk("\n\n   \n\t\n");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, KeywordsAreRecognised) {
  auto tokens = LexOk("PROGRAM DIMENSION PARAMETER DO CONTINUE END");
  EXPECT_EQ(Kinds(tokens),
            (std::vector<TokenKind>{TokenKind::kKwProgram, TokenKind::kKwDimension,
                                    TokenKind::kKwParameter, TokenKind::kKwDo,
                                    TokenKind::kKwContinue, TokenKind::kKwEnd,
                                    TokenKind::kNewline, TokenKind::kEof}));
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = LexOk("program Do coNtinue end");
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwProgram);
  EXPECT_EQ(tokens[1].kind, TokenKind::kKwDo);
  EXPECT_EQ(tokens[2].kind, TokenKind::kKwContinue);
  EXPECT_EQ(tokens[3].kind, TokenKind::kKwEnd);
}

TEST(LexerTest, IdentifiersUppercased) {
  auto tokens = LexOk("foo Bar9 x_1");
  EXPECT_EQ(tokens[0].text, "FOO");
  EXPECT_EQ(tokens[1].text, "BAR9");
  EXPECT_EQ(tokens[2].text, "X_1");
}

TEST(LexerTest, IntegerLiteral) {
  auto tokens = LexOk("12345");
  ASSERT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 12345);
}

TEST(LexerTest, RealLiteralsWithExponents) {
  auto tokens = LexOk("1.5 2. 3.25E+2 4.0D-1");
  EXPECT_EQ(tokens[0].kind, TokenKind::kReal);
  EXPECT_EQ(tokens[1].kind, TokenKind::kReal);
  EXPECT_EQ(tokens[2].kind, TokenKind::kReal);
  EXPECT_EQ(tokens[3].kind, TokenKind::kReal);
}

TEST(LexerTest, Punctuation) {
  auto tokens = LexOk("( ) , = + - * /");
  EXPECT_EQ(Kinds(tokens),
            (std::vector<TokenKind>{TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
                                    TokenKind::kAssign, TokenKind::kPlus, TokenKind::kMinus,
                                    TokenKind::kStar, TokenKind::kSlash, TokenKind::kNewline,
                                    TokenKind::kEof}));
}

TEST(LexerTest, BangCommentSkipsRestOfLine) {
  auto tokens = LexOk("DO 10 I = 1, 5 ! classic loop\nEND");
  bool saw_comment_word = false;
  for (const Token& t : tokens) {
    if (t.text == "CLASSIC" || t.text == "LOOP") {
      saw_comment_word = true;
    }
  }
  EXPECT_FALSE(saw_comment_word);
}

TEST(LexerTest, CommentCardInColumnOne) {
  auto tokens = LexOk("C this is a comment card\n* so is this\nEND");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwEnd);
}

TEST(LexerTest, StarCardIsCommentButStarOperatorIsNot) {
  auto tokens = LexOk("  A = B * C");
  bool saw_star = false;
  for (const Token& t : tokens) {
    saw_star = saw_star || t.kind == TokenKind::kStar;
  }
  EXPECT_TRUE(saw_star);
}

TEST(LexerTest, NewlinesSeparateStatements) {
  auto tokens = LexOk("A = 1\nB = 2");
  int newlines = 0;
  for (const Token& t : tokens) {
    newlines += t.kind == TokenKind::kNewline ? 1 : 0;
  }
  EXPECT_EQ(newlines, 2);
}

TEST(LexerTest, TracksLineAndColumn) {
  auto tokens = LexOk("A = 1\n  B = 2");
  EXPECT_EQ(tokens[0].location.line, 1u);
  EXPECT_EQ(tokens[0].location.column, 1u);
  // "B" is on line 2, column 3.
  const Token* b = nullptr;
  for (const Token& t : tokens) {
    if (t.text == "B") {
      b = &t;
    }
  }
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->location.line, 2u);
  EXPECT_EQ(b->location.column, 3u);
}

TEST(LexerTest, RejectsUnknownCharacter) {
  auto tokens = Lex("A = #");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.error().message.find("unexpected character"), std::string::npos);
}

TEST(LexerTest, LabelledContinueLexesAsIntegerThenKeyword) {
  auto tokens = LexOk("   10 CONTINUE");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 10);
  EXPECT_EQ(tokens[1].kind, TokenKind::kKwContinue);
}

TEST(LexerTest, TokenToStringIncludesSpelling) {
  auto tokens = LexOk("FOO 42");
  EXPECT_NE(tokens[0].ToString().find("FOO"), std::string::npos);
  EXPECT_NE(tokens[1].ToString().find("42"), std::string::npos);
}

}  // namespace
}  // namespace cdmm
