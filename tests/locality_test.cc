#include "src/analysis/locality.h"

#include <gtest/gtest.h>

#include "src/analysis/loop_tree.h"
#include "src/lang/sema.h"

namespace cdmm {
namespace {

struct Fixture {
  Program program;
  std::unique_ptr<LoopTree> tree;
  std::unique_ptr<LocalityAnalysis> locality;

  explicit Fixture(std::string_view source, LocalityOptions options = {}) {
    auto parsed = ParseAndCheck(source);
    EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().ToString());
    program = std::move(parsed).value();
    tree = std::make_unique<LoopTree>(program);
    locality = std::make_unique<LocalityAnalysis>(program, *tree, options);
  }

  int64_t Contribution(uint32_t loop_id, const std::string& array) const {
    for (const ArrayContribution& c : locality->loop(loop_id).contributions) {
      if (c.array == array) {
        return c.pages;
      }
    }
    return 0;
  }

  bool Rereferenced(uint32_t loop_id, const std::string& array) const {
    for (const ArrayContribution& c : locality->loop(loop_id).contributions) {
      if (c.array == array) {
        return c.rereferenced;
      }
    }
    return false;
  }
};

TEST(GeometryTest, AvsAndCvs) {
  PageGeometry g;  // 256B pages, 4B elements -> 64 per page
  ArrayDecl vec{"V", 100, 1, "100", "", {}};
  EXPECT_EQ(ArrayVirtualSize(vec, g), 2);  // ceil(100/64)
  ArrayDecl mat{"A", 100, 100, "100", "100", {}};
  EXPECT_EQ(ArrayVirtualSize(mat, g), 157);  // ceil(10000/64)
  EXPECT_EQ(ColumnVirtualSize(mat, g), 2);   // ceil(100/64)
  PageGeometry big{1024, 4};
  EXPECT_EQ(big.ElementsPerPage(), 256u);
  EXPECT_EQ(ArrayVirtualSize(mat, big), 40);
}

// The paper's Figure 5 worked example (N = 100, 64 elements/page):
//  - vectors A, B referenced at the outer loop's own level contribute one
//    page each ("allocating one page for each vector will be sufficient");
//  - vectors C, D, E, F referenced inside inner loops contribute their full
//    virtual size (2 pages each at N = 100);
//  - row-wise CC contributes about one page per column (N plus straddle);
//  - column-wise DD advancing with the outer loop contributes ~1 page.
constexpr char kFigure5[] = R"(
      PROGRAM FIG5
      PARAMETER (N = 100)
      DIMENSION A(N), B(N), C(N), D(N), E(N), F(N), CC(N,N), DD(N,N)
      DO 40 I = 1, N
        A(I) = B(I) + 1.0
        DO 20 J = 1, N
          C(J) = D(J) + CC(I,J)
          DD(J,I) = C(J)
   20   CONTINUE
        E(1) = F(1)
        DO 30 K = 1, N
          E(K) = F(K) * 2.0
          DO 10 L = 1, N
            F(L) = F(L) + E(K)
   10     CONTINUE
   30   CONTINUE
   40 CONTINUE
      END
)";

TEST(LocalityTest, Figure5OuterLoopContributions) {
  Fixture f(kFigure5);
  uint32_t outer = 1;  // loop 40 is the first loop in preorder
  // The paper allocates exactly one page for A and B; the validated
  // estimator adds the shared page-straddle margin (see estimate_accuracy),
  // so each sliding vector costs its active page plus one.
  EXPECT_EQ(f.Contribution(outer, "A"), 2);
  EXPECT_EQ(f.Contribution(outer, "B"), 2);
  EXPECT_FALSE(f.Rereferenced(outer, "A"));
  // Full vectors for the inner-loop vectors (AVS = 2 pages at N=100).
  EXPECT_EQ(f.Contribution(outer, "C"), 2);
  EXPECT_EQ(f.Contribution(outer, "D"), 2);
  EXPECT_EQ(f.Contribution(outer, "E"), 2);
  EXPECT_EQ(f.Contribution(outer, "F"), 2);
  EXPECT_TRUE(f.Rereferenced(outer, "C"));
  // Row-wise CC: one page per referenced column (X_r * N) plus straddle.
  EXPECT_GE(f.Contribution(outer, "CC"), 100);
  EXPECT_LE(f.Contribution(outer, "CC"), 102);
  EXPECT_TRUE(f.Rereferenced(outer, "CC"));
  // Column-wise DD advancing with loop 40: only the active page(s).
  EXPECT_LE(f.Contribution(outer, "DD"), 3);
  EXPECT_FALSE(f.Rereferenced(outer, "DD"));
}

TEST(LocalityTest, Figure5PriorityIndexesMatchProcedure1) {
  Fixture f(kFigure5);
  EXPECT_EQ(f.locality->loop(1).priority_index, 3);  // loop 40
  EXPECT_EQ(f.locality->loop(2).priority_index, 1);  // loop 20
  EXPECT_EQ(f.locality->loop(3).priority_index, 2);  // loop 30
  EXPECT_EQ(f.locality->loop(4).priority_index, 1);  // loop 10
}

TEST(LocalityTest, ChainMonotonicity) {
  Fixture f(kFigure5);
  for (const LoopNode* node : f.tree->preorder()) {
    if (node->parent != nullptr) {
      EXPECT_GE(f.locality->loop(node->parent->loop_id).pages,
                f.locality->loop(node->loop_id).pages)
          << "X must be non-increasing toward inner loops";
    }
  }
}

TEST(LocalityTest, Figure1Loop20FormsNoLocality) {
  // Figure 1: loop 20 references E and F row-wise at its own level — "loop 20
  // does not form a locality".
  Fixture f(R"(
      PROGRAM FIG1
      PARAMETER (M = 200, N = 10)
      DIMENSION E(M,N), F(M,N), G(M,N), H(M,N)
      DO 10 I = 1, N
        DO 20 J = 1, N
          E(I,J) = F(I,J)
   20   CONTINUE
        DO 30 K = 1, M
          G(K,I) = H(K,I)
   30   CONTINUE
   10 CONTINUE
      END
)");
  uint32_t loop20 = 2;
  EXPECT_FALSE(f.locality->loop(loop20).forms_locality);
  // It still receives the default minimum allocation.
  EXPECT_GE(f.locality->loop(loop20).pages, 2);
  // Loop 30 (column-wise walk) does form a locality.
  EXPECT_TRUE(f.locality->loop(3).forms_locality);
  // Loop 10 sees the full spans of E and F (row pages re-referenced).
  EXPECT_TRUE(f.locality->loop(1).forms_locality);
}

TEST(LocalityTest, ColumnResweepChargesWholeColumn) {
  // A column re-swept on every outer iteration must stay resident: the
  // contribution is the column size (CVS), not one page.
  Fixture f(R"(
      PROGRAM P
      PARAMETER (M = 256)
      DIMENSION A(M,4)
      DO 20 T = 1, 10
        DO 10 I = 1, M
          A(I,2) = A(I,2) + 1.0
   10   CONTINUE
   20 CONTINUE
      END
)");
  // CVS = 256/64 = 4; with the straddle allowance the estimate is 4..5.
  EXPECT_GE(f.Contribution(1, "A"), 4);
  EXPECT_LE(f.Contribution(1, "A"), 5);
  EXPECT_TRUE(f.Rereferenced(1, "A"));
}

TEST(LocalityTest, SelfColumnWalkChargesSlidingWindowOnly) {
  // The loop itself walks down a long column once: only the active window is
  // charged (Figure 5's "one active page" reading), not the whole column.
  Fixture f(R"(
      PROGRAM P
      PARAMETER (M = 4096)
      DIMENSION A(M,2)
      DO 10 I = 1, M
        A(I,1) = A(I,1) * 2.0
   10 CONTINUE
      END
)");
  EXPECT_LE(f.Contribution(1, "A"), 3);
}

TEST(LocalityTest, TripCountBoundsPartialSpan) {
  // An inner loop visiting only 16 of 64 columns must not be charged the
  // whole array.
  Fixture f(R"(
      PROGRAM P
      PARAMETER (M = 64, N = 64)
      DIMENSION A(M,N)
      DO 30 T = 1, 4
        DO 20 J = 1, 16
          DO 10 I = 1, M
            A(I,J) = A(I,J) + 1.0
   10     CONTINUE
   20   CONTINUE
   30 CONTINUE
      END
)");
  int64_t avs = 64;  // 64x64 / 64 per page
  int64_t contribution = f.Contribution(1, "A");
  EXPECT_LT(contribution, avs / 2);
  EXPECT_GE(contribution, 16);
}

TEST(LocalityTest, VectorPartialSpanBounded) {
  Fixture f(R"(
      PROGRAM P
      PARAMETER (L = 8192)
      DIMENSION S(L)
      DO 20 K = 1, 10
        DO 10 I = 1, 128
          S(I) = S(I) + 1.0
   10   CONTINUE
   20 CONTINUE
      END
)");
  // Only 128 of 8192 elements (2 of 128 pages) are touched.
  EXPECT_LE(f.Contribution(1, "S"), 3);
  EXPECT_TRUE(f.Rereferenced(1, "S"));
}

TEST(LocalityTest, DistinctIndexExpressionsCountAsPages) {
  // §2's example: W = V(I) + V(I+1) + V(J) uses three distinct indexes, so
  // up to three pages of V can be live in one iteration.
  Fixture f(R"(
      PROGRAM P
      PARAMETER (N = 1024)
      DIMENSION V(N)
      DO 20 J = 1, N
        DO 10 I = 1, 1023
          W = V(I) + V(I+1) + V(J)
   10   CONTINUE
   20 CONTINUE
      END
)");
  // At loop 10's level: V(I), V(I+1) slide (2 pages), V(J) is outer-fixed
  // (1 page, re-referenced), plus the per-array straddle margin.
  const LoopLocality& inner = f.locality->loop(2);
  int64_t v = 0;
  for (const ArrayContribution& c : inner.contributions) {
    if (c.array == "V") {
      v = c.pages;
    }
  }
  EXPECT_EQ(v, 4);
}

TEST(LocalityTest, TotalVirtualPages) {
  Fixture f(kFigure5);
  // 6 vectors of 2 pages + 2 matrices of 157 pages.
  EXPECT_EQ(f.locality->total_virtual_pages(), 6 * 2 + 2 * 157);
}

TEST(LocalityTest, MinimumDefaultPagesHonoured) {
  LocalityOptions options;
  options.min_default_pages = 7;
  Fixture f(R"(
      PROGRAM P
      DIMENSION V(4)
      DO 10 I = 1, 4
        V(I) = 0.0
   10 CONTINUE
      END
)",
            options);
  EXPECT_GE(f.locality->loop(1).pages, 7);
}

TEST(LocalityTest, ReportMentionsEveryLoop) {
  Fixture f(kFigure5);
  std::string report = f.locality->Report();
  EXPECT_NE(report.find("loop 40"), std::string::npos);
  EXPECT_NE(report.find("loop 20"), std::string::npos);
  EXPECT_NE(report.find("loop 30"), std::string::npos);
  EXPECT_NE(report.find("loop 10"), std::string::npos);
  EXPECT_NE(report.find("CC"), std::string::npos);
}

TEST(LocalityTest, LargerPageSizeShrinksEstimates) {
  Fixture small(kFigure5);
  LocalityOptions big;
  big.geometry.page_size_bytes = 4096;
  Fixture large(kFigure5, big);
  EXPECT_LT(large.locality->loop(1).pages, small.locality->loop(1).pages);
}

}  // namespace
}  // namespace cdmm
