// Tests for the parallel sweep engine: ThreadPool semantics (exception
// propagation, nested submission, drain-on-shutdown), compute-once memo
// contention, --jobs flag parsing, and the core determinism property — a
// full LRU+WS sweep produces bit-identical SweepPoint vectors serially and
// at 1, 2, and 8 threads.
#include "src/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/exec/memo.h"
#include "src/exec/nest_parallel.h"
#include "src/exec/sweep_scheduler.h"
#include "src/interp/interpreter.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::future<int> f = pool.Submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, PostRunsEveryTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, NestedSubmissionDrainsOnShutdown) {
  // Tasks that post more tasks from inside the pool; destruction must wait
  // for the transitive closure.
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Post([&pool, &count] {
        count.fetch_add(1, std::memory_order_relaxed);
        pool.Post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      });
    }
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ShutdownUnderLoad) {
  // Long-ish tasks still queued when the destructor runs; all must complete.
  std::atomic<uint64_t> sum{0};
  {
    ThreadPool pool(8);
    for (uint64_t i = 1; i <= 64; ++i) {
      pool.Post([&sum, i] {
        uint64_t local = 0;
        for (uint64_t k = 0; k < 50000; ++k) {
          local += (i * k) % 7;
        }
        sum.fetch_add(local + i, std::memory_order_relaxed);
      });
    }
  }
  uint64_t base = 0;
  for (uint64_t i = 1; i <= 64; ++i) {
    uint64_t local = 0;
    for (uint64_t k = 0; k < 50000; ++k) {
      local += (i * k) % 7;
    }
    base += local + i;
  }
  EXPECT_EQ(sum.load(), base);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolIsSerial) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, RethrowsException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [](size_t i) {
                    if (i == 37) {
                      throw std::runtime_error("bad index");
                    }
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, NestedFanOutDoesNotDeadlock) {
  // Each outer iteration runs its own inner ParallelFor on the same pool —
  // the shape Prefetch produces (WsCurve inside a prefetch task). The caller
  // participates via the claim counter, so this completes even with every
  // worker busy.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  ParallelFor(&pool, 8, [&](size_t) {
    ParallelFor(&pool, 8,
                [&](size_t) { count.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(MemoTest, ComputesOnceUnderContention) {
  ThreadPool pool(8);
  Memo<std::string, int> memo;
  std::atomic<int> computes{0};
  ParallelFor(&pool, 64, [&](size_t) {
    const int& v = memo.GetOrCompute("key", [&] {
      computes.fetch_add(1, std::memory_order_relaxed);
      return 7;
    });
    EXPECT_EQ(v, 7);
  });
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(memo.size(), 1u);
}

TEST(MemoTest, DistinctKeysComputeIndependently) {
  Memo<int, int> memo;
  EXPECT_EQ(memo.GetOrCompute(1, [] { return 10; }), 10);
  EXPECT_EQ(memo.GetOrCompute(2, [] { return 20; }), 20);
  EXPECT_EQ(memo.GetOrCompute(1, [] { return 99; }), 10);  // cached
  EXPECT_EQ(memo.size(), 2u);
}

// ParseJobsFlag rewrites argv in place and null-terminates it, so the test
// vectors carry one trailing slot for the terminator.
std::vector<char*> MakeArgv(std::initializer_list<const char*> args) {
  std::vector<char*> argv;
  for (const char* a : args) {
    argv.push_back(const_cast<char*>(a));
  }
  argv.push_back(nullptr);
  return argv;
}

TEST(FlagsTest, ParseJobsStripsFlag) {
  std::vector<char*> argv = MakeArgv({"prog", "--jobs", "3", "positional"});
  int argc = 4;
  unsigned jobs = ParseJobsFlag(&argc, argv.data());
  EXPECT_EQ(jobs, 3u);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "positional");
}

TEST(FlagsTest, ParseJobsEqualsForm) {
  std::vector<char*> argv = MakeArgv({"prog", "--jobs=5"});
  int argc = 2;
  EXPECT_EQ(ParseJobsFlag(&argc, argv.data()), 5u);
  EXPECT_EQ(argc, 1);
}

TEST(FlagsTest, ParseJobsAutoAndDefault) {
  {
    std::vector<char*> argv = MakeArgv({"prog", "--jobs", "auto"});
    int argc = 3;
    EXPECT_EQ(ParseJobsFlag(&argc, argv.data()), ThreadPool::DefaultConcurrency());
  }
  {
    std::vector<char*> argv = MakeArgv({"prog"});
    int argc = 1;
    // Absent flag with default_jobs = 0 also means all cores.
    EXPECT_EQ(ParseJobsFlag(&argc, argv.data()), ThreadPool::DefaultConcurrency());
  }
}

// ---- Determinism: serial sweep == scheduler sweep at 1, 2, and 8 threads.

class SweepDeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SweepDeterminismTest, LruAndWsSweepsBitIdenticalAcrossThreadCounts) {
  auto compiled = CompiledProgram::FromSource(FindWorkload(GetParam()).source);
  ASSERT_TRUE(compiled.ok());
  const CompiledProgram& cp = compiled.value();
  std::shared_ptr<const Trace> refs = cp.shared_references();
  uint32_t v = cp.virtual_pages();
  std::vector<uint64_t> taus = DefaultTauGrid(refs->reference_count(), 8);

  std::vector<SweepPoint> lru_serial = LruSweep(*refs, v);
  std::vector<SweepPoint> ws_serial = WsSweep(*refs, taus);

  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    SweepScheduler sched(&pool);
    EXPECT_EQ(sched.Lru(refs, v), lru_serial) << threads << " threads";
    EXPECT_EQ(sched.Ws(refs, taus), ws_serial) << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SweepDeterminismTest,
                         ::testing::Values("FDJAC", "HWSCRT"));

TEST(SweepDeterminismTest, MapPreservesIndexOrder) {
  ThreadPool pool(8);
  SweepScheduler sched(&pool);
  std::vector<int> out =
      sched.Map<int>(100, [](size_t i) { return static_cast<int>(i) * 3; });
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(out[i], i * 3);
  }
}

// ---- MapPartial: deadlines, injected stalls/poison, partial results.

TEST(MapPartialTest, NominalSweepIsCompleteAndOrdered) {
  ThreadPool pool(8);
  SweepScheduler sched(&pool);
  PartialSweep<int> out = sched.MapPartial<int>(
      50, [](size_t i, const CancelToken&) { return static_cast<int>(i) * 2; });
  EXPECT_TRUE(out.complete());
  ASSERT_EQ(out.results.size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(out.indices[i], i);
    EXPECT_EQ(out.results[i], static_cast<int>(i) * 2);
  }
}

TEST(MapPartialTest, InjectedStallsBecomeTimeoutsOrderedByIndex) {
  FaultInjectionConfig config;
  config.seed = 5;
  config.stall_rate = 0.3;
  FaultInjector injector(config);
  PartialMapOptions options;
  options.injector = &injector;
  ThreadPool pool(8);
  SweepScheduler sched(&pool);
  auto fn = [](size_t i, const CancelToken&) { return static_cast<int>(i); };
  PartialSweep<int> out = sched.MapPartial<int>(64, fn, options);
  EXPECT_FALSE(out.complete());
  EXPECT_GT(out.failures.size(), 0u);
  EXPECT_EQ(out.results.size() + out.failures.size(), 64u);
  for (const SweepItemFailure& f : out.failures) {
    EXPECT_EQ(f.kind, SweepItemFailure::Kind::kTimeout);
  }
  for (size_t k = 1; k < out.failures.size(); ++k) {
    EXPECT_LT(out.failures[k - 1].index, out.failures[k].index);
  }
  for (size_t k = 1; k < out.indices.size(); ++k) {
    EXPECT_LT(out.indices[k - 1], out.indices[k]);
  }
  // Same seed, different thread count: identical partial report.
  SweepScheduler serial(nullptr);
  PartialSweep<int> again = serial.MapPartial<int>(64, fn, options);
  ASSERT_EQ(again.failures.size(), out.failures.size());
  for (size_t k = 0; k < out.failures.size(); ++k) {
    EXPECT_EQ(again.failures[k].index, out.failures[k].index);
  }
  EXPECT_EQ(again.results, out.results);
}

TEST(MapPartialTest, PoisonedItemsBecomeErrorsNotCrashes) {
  FaultInjectionConfig config;
  config.seed = 9;
  config.poison_rate = 0.25;
  FaultInjector injector(config);
  PartialMapOptions options;
  options.injector = &injector;
  ThreadPool pool(4);
  SweepScheduler sched(&pool);
  PartialSweep<int> out = sched.MapPartial<int>(
      40, [](size_t i, const CancelToken&) { return static_cast<int>(i); }, options);
  EXPECT_FALSE(out.complete());
  for (const SweepItemFailure& f : out.failures) {
    EXPECT_EQ(f.kind, SweepItemFailure::Kind::kError);
    EXPECT_EQ(f.message, "injected poison");
  }
  EXPECT_EQ(out.results.size() + out.failures.size(), 40u);
}

TEST(MapPartialTest, ItemExceptionsAreCapturedPerItem) {
  ThreadPool pool(4);
  SweepScheduler sched(&pool);
  PartialSweep<int> out = sched.MapPartial<int>(10, [](size_t i, const CancelToken&) {
    if (i == 3) {
      throw std::runtime_error("boom");
    }
    return static_cast<int>(i);
  });
  ASSERT_EQ(out.failures.size(), 1u);
  EXPECT_EQ(out.failures[0].index, 3u);
  EXPECT_EQ(out.failures[0].kind, SweepItemFailure::Kind::kError);
  EXPECT_EQ(out.failures[0].message, "boom");
  EXPECT_EQ(out.results.size(), 9u);
}

TEST(MapPartialTest, ExpiredDeadlineYieldsTimeoutsForUnstartedItems) {
  ThreadPool pool(2);
  SweepScheduler sched(&pool);
  PartialSweep<int> out = sched.MapPartial<int>(
      8,
      [](size_t, const CancelToken& token) -> int {
        if (token.Expired()) {
          throw SweepCancelled();
        }
        return 1;
      },
      PartialMapOptions{/*deadline_ms=*/1, nullptr});
  // With a 1ms budget some items may still complete; every non-completed one
  // must be a timeout, and the totals must add up.
  EXPECT_EQ(out.results.size() + out.failures.size(), 8u);
  for (const SweepItemFailure& f : out.failures) {
    EXPECT_EQ(f.kind, SweepItemFailure::Kind::kTimeout);
  }
}

TEST(MapPartialTest, CooperativeCancellationReportsTimeout) {
  ThreadPool pool(2);
  SweepScheduler sched(&pool);
  CancelToken shared;  // captured below; cancelled by item 0
  PartialSweep<int> out = sched.MapPartial<int>(1, [&](size_t, const CancelToken&) -> int {
    shared.Cancel();
    if (shared.Expired()) {
      throw SweepCancelled();
    }
    return 1;
  });
  ASSERT_EQ(out.failures.size(), 1u);
  EXPECT_EQ(out.failures[0].kind, SweepItemFailure::Kind::kTimeout);
}

TEST(NestParallelTest, DisjointRangeIntegerWritersAreSerialized) {
  // Two nests fill disjoint halves of the same INTEGER array; their access
  // ranges are provably disjoint, but the fold-back merges whole INTEGER
  // arrays, so running them concurrently would let the second unit's copy
  // clobber the first unit's elements (the gather below would then read
  // zeros). The planner must keep the two writers in separate groups, and
  // the merged trace must stay byte-identical to sequential generation.
  Result<CompiledProgram> cp = CompiledProgram::FromSource(
      "      PROGRAM SPLIT\n"
      "      INTEGER IDX(8)\n"
      "      DIMENSION A(8), B(8)\n"
      "      DO 10 I = 1, 4\n"
      "        IDX(I) = I\n"
      "   10 CONTINUE\n"
      "      DO 20 I = 5, 8\n"
      "        IDX(I) = I\n"
      "   20 CONTINUE\n"
      "      DO 30 I = 1, 8\n"
      "        A(I) = B(IDX(I))\n"
      "   30 CONTINUE\n"
      "      END\n");
  ASSERT_TRUE(cp.ok());
  const CompiledProgram& c = cp.value();

  std::vector<std::vector<size_t>> groups = PlanNestGroups(c.program(), c.deps());
  for (const std::vector<size_t>& group : groups) {
    bool has_first = std::find(group.begin(), group.end(), size_t{0}) != group.end();
    bool has_second = std::find(group.begin(), group.end(), size_t{1}) != group.end();
    EXPECT_FALSE(has_first && has_second)
        << "two writers of one INTEGER array must not share a group";
  }

  InterpOptions iopt;
  Trace sequential = GenerateTrace(c.program(), c.tree(), &c.dep_plan(), iopt);
  for (size_t jobs : {size_t{1}, size_t{4}}) {
    ThreadPool pool(jobs);
    SweepScheduler sched(&pool);
    NestParallelResult np =
        GenerateTraceParallelNests(c.program(), c.tree(), c.deps(), &c.dep_plan(), iopt, sched);
    EXPECT_EQ(np.trace, sequential) << "jobs=" << jobs;
  }
}

TEST(MapPartialTest, MapStillPropagatesExceptions) {
  // The strict Map contract is unchanged: a throwing task aborts the sweep
  // with the first exception rethrown to the caller.
  ThreadPool pool(4);
  SweepScheduler sched(&pool);
  EXPECT_THROW(sched.Map<int>(8,
                              [](size_t i) -> int {
                                if (i == 2) {
                                  throw std::runtime_error("strict");
                                }
                                return 0;
                              }),
               std::runtime_error);
}

}  // namespace
}  // namespace cdmm
