// Tests for the cdmm-serve stack: the JSON value/parser, the wire protocol
// (framing, request parsing, fingerprints), and ServerCore's robustness
// machinery — result cache, admission hysteresis, circuit breaker, retry
// schedule, drain — including the determinism contract at several thread
// counts.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/thread_pool.h"
#include "src/robust/load_controller.h"
#include "src/serve/json.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"

namespace cdmm {
namespace {

// ---------------------------------------------------------------- JSON

TEST(ServeJsonTest, ParsesScalarsArraysObjects) {
  Result<JsonValue> v = ParseJson(R"({"a":1,"b":"x","c":[true,null,2.5],"d":{"e":-3}})");
  ASSERT_TRUE(v.ok());
  const JsonValue& doc = v.value();
  EXPECT_EQ(doc.GetU64("a"), 1u);
  EXPECT_EQ(doc.GetString("b"), "x");
  const JsonValue* c = doc.Find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->Items().size(), 3u);
  EXPECT_TRUE(c->Items()[0].AsBool());
  EXPECT_TRUE(c->Items()[1].is_null());
  EXPECT_DOUBLE_EQ(c->Items()[2].AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(doc.Find("d")->Find("e")->AsDouble(), -3.0);
}

TEST(ServeJsonTest, RoundTripsThroughDump) {
  const std::string text = R"({"op":"simulate","n":42,"ok":true,"list":[1,2],"s":"a\"b"})";
  Result<JsonValue> v = ParseJson(text);
  ASSERT_TRUE(v.ok());
  Result<JsonValue> again = ParseJson(v.value().Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(v.value().Dump(), again.value().Dump());
}

TEST(ServeJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,2,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("+5").ok());
}

TEST(ServeJsonTest, HugeNumbersAreRejectedOrClamped) {
  // Literals that overflow double (strtod -> inf) are parse errors, matching
  // the grammar's inf/nan rejection...
  EXPECT_FALSE(ParseJson(R"({"n":1e999})").ok());
  EXPECT_FALSE(ParseJson("[-1e999]").ok());
  // ...and finite doubles beyond uint64_t range clamp instead of hitting the
  // undefined float-to-integer cast (reachable from untrusted "penalty").
  Result<JsonValue> big = ParseJson(R"({"n":1e300})");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big.value().GetU64("n"), UINT64_MAX);
  Result<JsonValue> negative = ParseJson(R"({"n":-1e300})");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative.value().GetU64("n"), 0u);
}

TEST(ServeJsonTest, DepthLimitStopsAdversarialNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(ServeJsonTest, StringEscapes) {
  Result<JsonValue> v = ParseJson(R"({"s":"a\n\t\"\\A"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().GetString("s"), "a\n\t\"\\A");
  // Control characters must be escaped on the way out.
  JsonValue o = JsonValue::Object();
  o.Set("s", JsonValue::Str(std::string("a\nb")));
  EXPECT_EQ(o.Dump(), "{\"s\":\"a\\nb\"}");
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocolTest, FramingRoundTrip) {
  std::string buffer = EncodeFrame("hello") + EncodeFrame("") + EncodeFrame("world");
  size_t pos = 0;
  Result<std::optional<std::string>> a = DecodeFrame(buffer, &pos);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a.value(), "hello");
  Result<std::optional<std::string>> b = DecodeFrame(buffer, &pos);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b.value(), "");
  Result<std::optional<std::string>> c = DecodeFrame(buffer, &pos);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c.value(), "world");
  Result<std::optional<std::string>> d = DecodeFrame(buffer, &pos);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d.value().has_value());
  EXPECT_EQ(pos, buffer.size());
}

TEST(ServeProtocolTest, PartialFrameWaitsForMoreBytes) {
  std::string full = EncodeFrame("payload");
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::string partial = full.substr(0, cut);
    size_t pos = 0;
    Result<std::optional<std::string>> r = DecodeFrame(partial, &pos);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().has_value()) << "cut=" << cut;
    EXPECT_EQ(pos, 0u);
  }
}

TEST(ServeProtocolTest, OversizedLengthPrefixIsAnError) {
  std::string evil = "\xff\xff\xff\x7f";  // ~2 GiB declared payload
  size_t pos = 0;
  EXPECT_FALSE(DecodeFrame(evil, &pos).ok());
}

TEST(ServeProtocolTest, ParsesEveryOp) {
  EXPECT_EQ(ParseServeRequest(R"({"op":"ping"})").value().op, ServeOp::kPing);
  EXPECT_EQ(ParseServeRequest(R"({"op":"stats"})").value().op, ServeOp::kStats);
  Result<ServeRequest> sim =
      ParseServeRequest(R"({"op":"simulate","workload":"MAIN","policy":"lru:8"})");
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim.value().op, ServeOp::kSimulate);
  EXPECT_EQ(sim.value().workload, "MAIN");
  EXPECT_EQ(sim.value().policy, "lru:8");
  EXPECT_EQ(ParseServeRequest(R"({"op":"sweep","workload":"TQL","kind":"opt"})")
                .value()
                .op,
            ServeOp::kSweepOpt);
  Result<ServeRequest> ladder = ParseServeRequest(
      R"({"op":"ladder","workload":"TQL","policy":"cd-outer","penalty":20})");
  ASSERT_TRUE(ladder.ok());
  EXPECT_EQ(ladder.value().penalty, 20u);
}

TEST(ServeProtocolTest, RejectsBadRequests) {
  EXPECT_FALSE(ParseServeRequest("not json").ok());
  EXPECT_FALSE(ParseServeRequest("[1,2]").ok());
  EXPECT_FALSE(ParseServeRequest(R"({"op":"frobnicate"})").ok());
  EXPECT_FALSE(ParseServeRequest(R"({"op":"simulate","policy":"lru:8"})").ok());
  EXPECT_FALSE(ParseServeRequest(R"({"op":"simulate","workload":"MAIN"})").ok());
  EXPECT_FALSE(ParseServeRequest(R"({"op":"sweep","workload":"X","kind":"zig"})").ok());
  EXPECT_FALSE(ParseServeRequest(R"({"nop":"ping"})").ok());
}

TEST(ServeProtocolTest, FingerprintSeparatesSemanticFields) {
  ServeRequest a = ParseServeRequest(
                       R"({"op":"simulate","workload":"MAIN","policy":"lru:8"})")
                       .value();
  ServeRequest b = a;
  EXPECT_EQ(FingerprintRequest(a), FingerprintRequest(b));
  b.policy = "lru:9";
  EXPECT_NE(FingerprintRequest(a), FingerprintRequest(b));
  b = a;
  b.workload = "TQL";
  EXPECT_NE(FingerprintRequest(a), FingerprintRequest(b));
  b = a;
  b.penalty = 19;
  EXPECT_NE(FingerprintRequest(a), FingerprintRequest(b));
  // The deadline is NOT part of the identity: same result, different patience.
  b = a;
  b.deadline_ms = 5000;
  EXPECT_EQ(FingerprintRequest(a), FingerprintRequest(b));
}

// ---------------------------------------------------------------- server

ServeRequest SimReq(const std::string& workload, const std::string& policy) {
  ServeRequest r;
  r.op = ServeOp::kSimulate;
  r.workload = workload;
  r.policy = policy;
  return r;
}

TEST(ServerCoreTest, SimulateSweepLadderAndCache) {
  ServerCore core(nullptr);
  ServeResponse first = core.Handle(SimReq("FDJAC", "lru:16"));
  ASSERT_EQ(first.status, ServeStatus::kOk) << first.error;
  EXPECT_FALSE(first.cached);
  EXPECT_NE(first.payload.find("\"faults\""), std::string::npos);

  ServeResponse repeat = core.Handle(SimReq("FDJAC", "lru:16"));
  EXPECT_EQ(repeat.status, ServeStatus::kOk);
  EXPECT_TRUE(repeat.cached);
  EXPECT_EQ(repeat.payload, first.payload);
  EXPECT_EQ(core.stats().cache_hits, 1u);

  ServeRequest sweep;
  sweep.op = ServeOp::kSweepWs;
  sweep.workload = "FDJAC";
  ServeResponse curve = core.Handle(sweep);
  ASSERT_EQ(curve.status, ServeStatus::kOk) << curve.error;
  EXPECT_NE(curve.payload.find("\"fingerprint\""), std::string::npos);

  ServeRequest ladder;
  ladder.op = ServeOp::kLadderCell;
  ladder.workload = "FDJAC";
  ladder.policy = "cd-outer";
  ladder.penalty = 200;
  ServeResponse cell = core.Handle(ladder);
  ASSERT_EQ(cell.status, ServeStatus::kOk) << cell.error;
  EXPECT_NE(cell.payload.find("\"penalty\":200"), std::string::npos);
}

TEST(ServerCoreTest, StructuredErrorsNeverThrow) {
  ServerCore core(nullptr);
  EXPECT_EQ(core.Handle(SimReq("NOSUCH", "lru:16")).status, ServeStatus::kError);
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "zap:9")).status, ServeStatus::kError);
  ServeRequest ladder;
  ladder.op = ServeOp::kLadderCell;
  ladder.workload = "FDJAC";
  ladder.policy = "lru:8";
  ladder.hierarchy = "not:a:valid:spec:at:all";
  EXPECT_EQ(core.Handle(ladder).status, ServeStatus::kError);
  // The server still works afterwards.
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "lru:16")).status, ServeStatus::kOk);
}

TEST(ServerCoreTest, HandleBatchRawAnswersEveryPayload) {
  ServerCore core(nullptr);
  std::vector<ServeResponse> responses = core.HandleBatchRaw({
      R"({"op":"ping"})",
      "garbage",
      R"({"op":"simulate","workload":"FDJAC","policy":"lru:16"})",
  });
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk);
  EXPECT_EQ(responses[1].status, ServeStatus::kError);
  EXPECT_EQ(responses[2].status, ServeStatus::kOk);
}

TEST(ServerCoreTest, AdmissionShedsOverBudgetAndRecoversWithHysteresis) {
  ServeLimits limits;
  limits.admit_budget = 8;       // sheds once projected backlog exceeds 8
  limits.drain_per_request = 0;  // no drain: observe pure hysteresis
  ServerCore core(nullptr, limits);

  // Distinct fingerprints, cost 2 each: 4 admitted fills the budget; the
  // 5th projects 10/8 > 1 and shedding starts, sticky until load < 1/2.
  std::vector<ServeRequest> burst;
  for (int i = 0; i < 8; ++i) {
    burst.push_back(SimReq("FDJAC", "lru:" + std::to_string(i + 2)));
  }
  std::vector<ServeResponse> responses = core.HandleBatch(burst);
  int shed = 0;
  for (const ServeResponse& r : responses) {
    shed += r.status == ServeStatus::kShed ? 1 : 0;
  }
  EXPECT_EQ(shed, 4);
  EXPECT_EQ(core.stats().admitted, 4u);
  // All admitted work completed, so the backlog drained at batch end...
  EXPECT_EQ(core.backlog(), 0u);
  // ...and the next request is readmitted (health back above the high mark).
  EXPECT_NE(core.Handle(SimReq("FDJAC", "lru:16")).status, ServeStatus::kShed);
}

TEST(ServerCoreTest, CacheHitsBypassAdmission) {
  ServeLimits limits;
  limits.admit_budget = 4;
  limits.drain_per_request = 0;
  ServerCore core(nullptr, limits);
  ASSERT_EQ(core.Handle(SimReq("FDJAC", "lru:16")).status, ServeStatus::kOk);

  // A batch of 64 repeats costs nothing: all cached, none shed.
  std::vector<ServeRequest> repeats(64, SimReq("FDJAC", "lru:16"));
  for (const ServeResponse& r : core.HandleBatch(repeats)) {
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_TRUE(r.cached);
  }
  EXPECT_EQ(core.stats().shed, 0u);
}

TEST(ServerCoreTest, ResultCacheIsBoundedWithLruEviction) {
  ServeLimits limits;
  limits.cache_capacity = 2;
  ServerCore core(nullptr, limits);
  ASSERT_EQ(core.Handle(SimReq("FDJAC", "lru:8")).status, ServeStatus::kOk);
  ASSERT_EQ(core.Handle(SimReq("FDJAC", "lru:9")).status, ServeStatus::kOk);
  // Touch lru:8 so lru:9 is now the least recently used entry...
  EXPECT_TRUE(core.Handle(SimReq("FDJAC", "lru:8")).cached);
  // ...and a third distinct result evicts lru:9, not lru:8.
  ASSERT_EQ(core.Handle(SimReq("FDJAC", "lru:10")).status, ServeStatus::kOk);
  EXPECT_TRUE(core.Handle(SimReq("FDJAC", "lru:8")).cached);
  ServeResponse evicted = core.Handle(SimReq("FDJAC", "lru:9"));
  EXPECT_EQ(evicted.status, ServeStatus::kOk);
  EXPECT_FALSE(evicted.cached);  // recomputed: it had been evicted
}

TEST(ServerCoreTest, BreakerTrackingIsBoundedByMaxShapes) {
  ServeLimits limits;
  limits.breaker_threshold = 1;
  limits.breaker_cooldown = 2;
  limits.breaker_max_shapes = 1;
  ServerCore core(nullptr, limits);
  // The first failing shape claims the only tracked slot and opens.
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "bogus:a")).status, ServeStatus::kError);
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "bogus:a")).status,
            ServeStatus::kQuarantined);
  // Further unique failing shapes still get structured errors but are never
  // quarantine-tracked: at the cap the breaker map stops growing.
  for (int i = 0; i < 8; ++i) {
    std::string policy = "bogus:" + std::to_string(i);
    EXPECT_EQ(core.Handle(SimReq("FDJAC", policy)).status, ServeStatus::kError);
    EXPECT_EQ(core.Handle(SimReq("FDJAC", policy)).status, ServeStatus::kError)
        << "shape " << i << " must not be tracked past the cap";
  }
  EXPECT_EQ(core.stats().breaker_opens, 1u);
}

TEST(ServerCoreTest, BreakerOpensQuarantinesAndHalfOpens) {
  ServeLimits limits;
  limits.breaker_threshold = 3;
  limits.breaker_cooldown = 4;
  ServerCore core(nullptr, limits);

  // Same failing shape (unknown policy => kError) three times: opens.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(core.Handle(SimReq("FDJAC", "bogus")).status, ServeStatus::kError);
  }
  EXPECT_EQ(core.stats().breaker_opens, 1u);

  // The next `cooldown` requests of that shape are quarantined unrun.
  for (int i = 0; i < 4; ++i) {
    ServeResponse r = core.Handle(SimReq("FDJAC", "bogus"));
    EXPECT_EQ(r.status, ServeStatus::kQuarantined) << i;
  }
  EXPECT_EQ(core.stats().quarantined, 4u);

  // Cooldown over: the half-open probe runs (and fails again -> re-open).
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "bogus")).status, ServeStatus::kError);
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "bogus")).status, ServeStatus::kQuarantined);

  // A different shape is unaffected throughout.
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "lru:16")).status, ServeStatus::kOk);
}

TEST(ServerCoreTest, BreakerReopensAfterFailedProbe) {
  ServeLimits limits;
  limits.breaker_threshold = 2;
  limits.breaker_cooldown = 1;
  ServerCore core(nullptr, limits);

  EXPECT_EQ(core.Handle(SimReq("FDJAC", "bogus")).status, ServeStatus::kError);
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "bogus")).status, ServeStatus::kError);
  EXPECT_EQ(core.stats().breaker_opens, 1u);
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "bogus")).status, ServeStatus::kQuarantined);
  // Cooldown over: the probe runs, fails again, and the breaker re-opens
  // (no second "open" counted, never a close).
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "bogus")).status, ServeStatus::kError);
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "bogus")).status, ServeStatus::kQuarantined);
  EXPECT_EQ(core.stats().breaker_opens, 1u);
  EXPECT_EQ(core.stats().breaker_closes, 0u);
}

TEST(ServerCoreTest, BreakerClosesWhenTransientPoisonClears) {
  // A shape that fails transiently and then recovers: the injector poisons
  // the first request's only attempt (admission seq 0 -> fate index 0) but
  // not the half-open probe's (seq 1 -> fate index 16). Search the seed
  // space for that fate pattern — injection is a pure function of the seed,
  // so the test stays deterministic.
  FaultInjectionConfig config;
  config.poison_rate = 0.5;
  uint64_t seed = 0;
  for (uint64_t s = 1; s < 10000 && seed == 0; ++s) {
    config.seed = s;
    FaultInjector probe(config);
    if (probe.PoisonsSweepItem(0) && !probe.PoisonsSweepItem(16)) seed = s;
  }
  ASSERT_NE(seed, 0u) << "no seed poisons fate 0 but not fate 16";

  ServeLimits limits;
  limits.breaker_threshold = 1;
  limits.breaker_cooldown = 1;
  limits.max_attempts = 1;  // one poisoned attempt fails the whole request
  limits.injection = config;
  limits.injection.seed = seed;
  ServerCore core(nullptr, limits);

  // seq 0: poisoned -> request fails, breaker opens.
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "lru:16")).status, ServeStatus::kPoisoned);
  EXPECT_EQ(core.stats().breaker_opens, 1u);
  // Cooldown: quarantined without running (consumes no admission seq).
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "lru:16")).status, ServeStatus::kQuarantined);
  // Half-open probe (seq 1): clean attempt, succeeds, breaker closes.
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "lru:16")).status, ServeStatus::kOk);
  EXPECT_EQ(core.stats().breaker_closes, 1u);
  // And the recovered result is now cached like any other success.
  EXPECT_TRUE(core.Handle(SimReq("FDJAC", "lru:16")).cached);
}

TEST(ServerCoreTest, DrainRefusesNewRequests) {
  ServerCore core(nullptr);
  EXPECT_EQ(core.Handle(SimReq("FDJAC", "lru:16")).status, ServeStatus::kOk);
  core.BeginDrain();
  ServeResponse r = core.Handle(SimReq("FDJAC", "lru:16"));
  EXPECT_EQ(r.status, ServeStatus::kDraining);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(core.stats().drained, 1u);
}

TEST(ServerCoreTest, InjectedChaosIsDeterministicAcrossThreadCounts) {
  auto soak = [](unsigned jobs) {
    std::unique_ptr<ThreadPool> pool;
    if (jobs > 1) {
      pool = std::make_unique<ThreadPool>(jobs);
    }
    ServeLimits limits;
    limits.injection = FaultInjectionConfig::AtIntensity(11, 1.0);
    limits.injection.stall_rate = 0.1;
    limits.injection.poison_rate = 0.4;
    ServerCore core(pool.get(), limits);
    std::string transcript;
    for (int round = 0; round < 4; ++round) {
      std::vector<ServeRequest> batch;
      for (int k = 0; k < 10; ++k) {
        batch.push_back(
            SimReq(round % 2 == 0 ? "FDJAC" : "TQL",
                   "lru:" + std::to_string(4 + round * 10 + k)));
      }
      for (const ServeResponse& r : core.HandleBatch(batch)) {
        transcript += r.ToJson();
        transcript += "\n";
      }
    }
    return transcript;
  };
  std::string serial = soak(1);
  EXPECT_EQ(serial, soak(4));
  EXPECT_EQ(serial, soak(8));
  // The chaos actually bit: some request was stalled or poisoned.
  EXPECT_TRUE(serial.find("\"timeout\"") != std::string::npos ||
              serial.find("\"poisoned\"") != std::string::npos);
}

TEST(ServerCoreTest, PoisonedRequestsReportBoundedMonotoneBackoff) {
  ServeLimits limits;
  limits.injection.seed = 3;
  limits.injection.poison_rate = 1.0;  // every attempt fails transiently
  limits.max_attempts = 4;
  ServerCore core(nullptr, limits);
  ServeResponse r = core.Handle(SimReq("FDJAC", "lru:16"));
  EXPECT_EQ(r.status, ServeStatus::kPoisoned);
  EXPECT_EQ(r.retries, 3);
  BackoffPolicy backoff = BackoffPolicy::FromInjectorConfig(limits.injection);
  EXPECT_GT(r.retry_delay, 0u);
  EXPECT_LE(r.retry_delay, backoff.WorstCase());
}

TEST(ServerCoreTest, StatsJsonIsWellFormed) {
  ServerCore core(nullptr);
  core.Handle(SimReq("FDJAC", "lru:16"));
  core.Handle(SimReq("FDJAC", "lru:16"));
  Result<JsonValue> stats = ParseJson(core.StatsJson());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().GetU64("received"), 2u);
  EXPECT_EQ(stats.value().GetU64("cache_hits"), 1u);
  EXPECT_FALSE(stats.value().GetBool("draining"));
}

// ------------------------------------------------- LoadController (serve map)

TEST(LoadControllerServeTest, DirectEvaluateHysteresis) {
  // The serve admission mapping: health = 1 - load, pressure = load,
  // watermarks (0, 0.5]: shed strictly above load 1, readmit below 0.5.
  LoadController controller(LoadControllerConfig{0, 0.0, 0.5, 0.0});
  EXPECT_FALSE(controller.shedding());
  EXPECT_EQ(controller.Evaluate(1.0 - 0.9, 0.9), LoadAction::kNone);
  EXPECT_EQ(controller.Evaluate(1.0 - 1.25, 1.25), LoadAction::kShed);
  EXPECT_TRUE(controller.shedding());
  // Inside the hysteresis band nothing changes.
  EXPECT_EQ(controller.Evaluate(1.0 - 0.75, 0.75), LoadAction::kNone);
  EXPECT_TRUE(controller.shedding());
  EXPECT_EQ(controller.Evaluate(1.0 - 0.4, 0.4), LoadAction::kReadmit);
  EXPECT_FALSE(controller.shedding());
  // Readmit-side samples keep the controller out of shedding.
  controller.Evaluate(1.0 - 0.3, 0.3);
  EXPECT_FALSE(controller.shedding());
}

}  // namespace
}  // namespace cdmm
