// Cross-policy invariants, checked on every one of the paper's nine
// workloads. These are theorems of the underlying models, so they hold for
// any correct simulator on any trace:
//   - OPT (Belady's MIN) never faults more than LRU at the same allocation;
//   - the LRU fault count is non-increasing in m (the inclusion property);
//   - VMIN, the optimal variable-space demand policy [Prieve & Fabry 1976],
//     has space-time cost no worse than WS at any window τ.
// The scans fan out over a shared ThreadPool and read one shared immutable
// reference trace per workload, which also exercises the parallel sweep
// engine under real workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/exec/memo.h"
#include "src/exec/sweep_scheduler.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/vmin.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

ThreadPool& Pool() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

// One compiled reference trace per workload, shared read-only by every test
// in this binary (and by every concurrent simulation inside a test).
std::shared_ptr<const Trace> RefsFor(const std::string& name) {
  static Memo<std::string, std::shared_ptr<const Trace>>* memo =
      new Memo<std::string, std::shared_ptr<const Trace>>();
  return memo->GetOrCompute(name, [&] {
    auto cp = CompiledProgram::FromSource(FindWorkload(name).source);
    return cp.value().shared_references();
  });
}

// A small spread of allocations: extremes plus interior points.
std::vector<uint32_t> SampleAllocations(uint32_t v) {
  std::set<uint32_t> ms = {1, std::max(1u, v / 4), std::max(1u, v / 2),
                           std::max(1u, 3 * v / 4), v};
  return {ms.begin(), ms.end()};
}

class InvariantTest : public ::testing::TestWithParam<const char*> {};

TEST_P(InvariantTest, OptNeverFaultsMoreThanLruAtEqualAllocation) {
  std::shared_ptr<const Trace> refs = RefsFor(GetParam());
  uint32_t v = refs->virtual_pages();
  SweepScheduler sched(&Pool());
  std::vector<SweepPoint> lru = sched.Lru(refs, v);
  std::vector<uint32_t> ms = SampleAllocations(v);
  std::vector<uint64_t> opt_faults = sched.Map<uint64_t>(ms.size(), [&](size_t i) {
    return SimulateFixed(*refs, ms[i], Replacement::kOpt).faults;
  });
  for (size_t i = 0; i < ms.size(); ++i) {
    EXPECT_LE(opt_faults[i], lru[ms[i] - 1].faults) << "m=" << ms[i];
  }
}

TEST_P(InvariantTest, LruFaultsNonIncreasingInAllocation) {
  std::shared_ptr<const Trace> refs = RefsFor(GetParam());
  uint32_t v = refs->virtual_pages();
  std::vector<SweepPoint> lru = SweepScheduler(&Pool()).Lru(refs, v);
  ASSERT_EQ(lru.size(), v);
  for (uint32_t m = 1; m < v; ++m) {
    EXPECT_GE(lru[m - 1].faults, lru[m].faults)
        << "inclusion property violated between m=" << m << " and m=" << m + 1;
  }
  // At full residency only cold faults remain: one per distinct page touched.
  std::set<PageId> touched;
  for (const auto& e : refs->events()) {
    if (e.kind == TraceEvent::Kind::kRef) {
      touched.insert(e.value);
    }
  }
  EXPECT_EQ(lru.back().faults, touched.size());
}

TEST_P(InvariantTest, VminSpaceTimeDominatesWsAtEveryWindow) {
  std::shared_ptr<const Trace> refs = RefsFor(GetParam());
  SweepScheduler sched(&Pool());
  SimResult vmin = SimulateVmin(*refs);
  std::vector<uint64_t> taus = DefaultTauGrid(refs->reference_count(), 10);
  std::vector<SweepPoint> ws = sched.Ws(refs, taus);
  for (const SweepPoint& p : ws) {
    // VMIN is exactly optimal; the epsilon only absorbs double rounding in
    // the two independently accumulated space-time sums.
    EXPECT_LE(vmin.space_time, p.space_time * (1.0 + 1e-9))
        << "tau=" << static_cast<uint64_t>(p.parameter);
  }
}

std::vector<const char*> WorkloadNames() {
  std::vector<const char*> names;
  for (const Workload& w : AllWorkloads()) {
    names.push_back(w.name.c_str());
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, InvariantTest,
                         ::testing::ValuesIn(WorkloadNames()),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace cdmm
