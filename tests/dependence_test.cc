// Tests for the dependence analysis: exact unit cases for the ZIV/SIV and
// GCD/Banerjee tiers, graph-level queries (CanParallelize, BlockingEdge,
// access ranges) over small programs, and the brute-force iteration-pair
// oracle run against both randomized affine problems and every dependence
// problem the builder produced for the builtin workloads.
//
// Soundness contract under test (dependence.h): a pair proven kIndependent
// must have no conflicting iteration pair; a kExact verdict must have a
// witness; and every direction the oracle observes must be contained in the
// analytic direction masks (kAssumed = all directions).
#include "src/analysis/dependence.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

DepLoop L(const std::string& var, int64_t lo, int64_t hi, int64_t step = 1, uint32_t id = 0) {
  DepLoop l;
  l.var = var;
  l.lo = lo;
  l.hi = hi;
  l.step = step;
  l.known = true;
  l.exact = true;
  l.loop_id = id;
  return l;
}

LinExpr Const(int64_t c) {
  LinExpr e;
  e.c = c;
  return e;
}

LinExpr Var(const std::string& var, int64_t coef, int64_t c) {
  LinExpr e;
  e.terms.push_back(LinTerm{var, coef});
  e.c = c;
  return e;
}

// Analytic direction mask at `level`: everything for kAssumed, the computed
// mask otherwise.
uint8_t MaskAt(const DepSolution& sol, size_t level) {
  if (sol.result == DepResult::kAssumed) {
    return kDirAll;
  }
  return level < sol.dir_masks.size() ? sol.dir_masks[level] : kDirAll;
}

// Asserts the soundness contract between one analytic solution and the
// oracle's answer for the same problem.
void ExpectSound(const DepProblem& p, const DepSolution& sol,
                 const std::optional<std::vector<uint8_t>>& oracle, const std::string& what) {
  if (sol.result == DepResult::kIndependent) {
    EXPECT_FALSE(oracle.has_value()) << what << ": proven independent but oracle found a pair";
  }
  if (!oracle.has_value()) {
    EXPECT_NE(sol.result, DepResult::kExact)
        << what << ": kExact verdict without a conflicting iteration pair";
    return;
  }
  ASSERT_EQ(oracle->size(), p.common.size()) << what;
  for (size_t l = 0; l < oracle->size(); ++l) {
    EXPECT_EQ((*oracle)[l] & ~MaskAt(sol, l), 0)
        << what << ": oracle direction " << DirMaskToString((*oracle)[l]) << " at level " << l
        << " escapes analytic mask " << DirMaskToString(MaskAt(sol, l));
  }
}

// ---------------------------------------------------------------------------
// ZIV: loop-invariant subscript pairs.

TEST(DependenceSolveTest, ZivEqualConstantsIsExactEveryDirection) {
  DepProblem p;
  p.common.push_back(L("I", 1, 10));
  p.src_subs.push_back(Const(5));
  p.dst_subs.push_back(Const(5));
  DepSolution sol = SolveDependence(p);
  EXPECT_EQ(sol.result, DepResult::kExact);
  EXPECT_STREQ(sol.test, "ziv");
  ASSERT_EQ(sol.dir_masks.size(), 1u);
  EXPECT_EQ(sol.dir_masks[0], kDirAll);
  ExpectSound(p, sol, BruteForceDirections(p), "ziv-equal");
}

TEST(DependenceSolveTest, ZivDifferentConstantsIsIndependent) {
  DepProblem p;
  p.common.push_back(L("I", 1, 10));
  p.src_subs.push_back(Const(5));
  p.dst_subs.push_back(Const(6));
  DepSolution sol = SolveDependence(p);
  EXPECT_EQ(sol.result, DepResult::kIndependent);
  EXPECT_FALSE(BruteForceDirections(p).has_value());
}

// ---------------------------------------------------------------------------
// SIV: one index variable.

TEST(DependenceSolveTest, StrongSivUnitDistanceIsCarriedForward) {
  // src A(I) vs dst A(I-1): the value written at iteration i is read one
  // iteration later, a distance-(+1) flow dependence carried by the loop.
  DepProblem p;
  p.common.push_back(L("I", 1, 10));
  p.src_subs.push_back(Var("I", 1, 0));
  p.dst_subs.push_back(Var("I", 1, -1));
  DepSolution sol = SolveDependence(p);
  EXPECT_EQ(sol.result, DepResult::kExact);
  ASSERT_EQ(sol.dir_masks.size(), 1u);
  EXPECT_EQ(sol.dir_masks[0], kDirLt);
  ASSERT_TRUE(sol.has_distance);
  ASSERT_EQ(sol.distances.size(), 1u);
  EXPECT_EQ(sol.distances[0], 1);
  ASSERT_EQ(sol.carried.size(), 1u);
  EXPECT_TRUE(sol.carried[0]);
  ExpectSound(p, sol, BruteForceDirections(p), "strong-siv");
}

TEST(DependenceSolveTest, SivDistanceBeyondTripCountIsIndependent) {
  DepProblem p;
  p.common.push_back(L("I", 1, 10));
  p.src_subs.push_back(Var("I", 1, 0));
  p.dst_subs.push_back(Var("I", 1, 20));
  DepSolution sol = SolveDependence(p);
  EXPECT_EQ(sol.result, DepResult::kIndependent);
  EXPECT_FALSE(BruteForceDirections(p).has_value());
}

TEST(DependenceSolveTest, SivParityMismatchIsIndependent) {
  // 2i = 2i' + 1 has no integer solution (GCD reasoning inside the SIV
  // tier): the even and odd element sets never meet.
  DepProblem p;
  p.common.push_back(L("I", 1, 10));
  p.src_subs.push_back(Var("I", 2, 0));
  p.dst_subs.push_back(Var("I", 2, 1));
  DepSolution sol = SolveDependence(p);
  EXPECT_EQ(sol.result, DepResult::kIndependent);
  EXPECT_FALSE(BruteForceDirections(p).has_value());
}

TEST(DependenceSolveTest, NegativeStepLoopAgreesWithOracle) {
  DepProblem p;
  p.common.push_back(L("I", 10, 1, -1));
  p.src_subs.push_back(Var("I", 1, 0));
  p.dst_subs.push_back(Var("I", 1, -1));
  DepSolution sol = SolveDependence(p);
  EXPECT_NE(sol.result, DepResult::kIndependent);
  ExpectSound(p, sol, BruteForceDirections(p), "negative-step");
}

// ---------------------------------------------------------------------------
// MIV: distinct variables per side (GCD + Banerjee tier).

TEST(DependenceSolveTest, GcdParityAcrossLoopsIsIndependent) {
  // src A(2I), dst A(2J+1) with J enclosing only the sink.
  DepProblem p;
  p.common.push_back(L("I", 1, 6));
  p.dst_only.push_back(L("J", 1, 6));
  p.src_subs.push_back(Var("I", 2, 0));
  p.dst_subs.push_back(Var("J", 2, 1));
  DepSolution sol = SolveDependence(p);
  EXPECT_EQ(sol.result, DepResult::kIndependent);
  EXPECT_FALSE(BruteForceDirections(p).has_value());
}

TEST(DependenceSolveTest, BanerjeeDisjointValueRangesIsIndependent) {
  // src touches [1,5], dst touches [11,15]: the bounds test separates them
  // even though the GCD test alone (gcd 1) cannot.
  DepProblem p;
  p.common.push_back(L("I", 1, 5));
  p.dst_only.push_back(L("J", 1, 5));
  p.src_subs.push_back(Var("I", 1, 0));
  p.dst_subs.push_back(Var("J", 1, 10));
  DepSolution sol = SolveDependence(p);
  EXPECT_EQ(sol.result, DepResult::kIndependent);
  EXPECT_FALSE(BruteForceDirections(p).has_value());
}

TEST(DependenceSolveTest, CoupledSubscriptsStaySound) {
  // A(I,J) vs A(J,I): both dimensions couple the two common loops; whatever
  // the verdict, it must cover every direction the oracle observes.
  DepProblem p;
  p.common.push_back(L("I", 1, 4));
  p.common.push_back(L("J", 1, 4));
  p.src_subs.push_back(Var("I", 1, 0));
  p.src_subs.push_back(Var("J", 1, 0));
  p.dst_subs.push_back(Var("J", 1, 0));
  p.dst_subs.push_back(Var("I", 1, 0));
  DepSolution sol = SolveDependence(p);
  EXPECT_NE(sol.result, DepResult::kIndependent);
  ExpectSound(p, sol, BruteForceDirections(p), "coupled");
}

TEST(DependenceSolveTest, NonAffineSubscriptIsAssumedEverywhere) {
  DepProblem p;
  p.common.push_back(L("I", 1, 8));
  LinExpr indirect;
  indirect.affine = false;
  p.src_subs.push_back(indirect);
  p.dst_subs.push_back(Var("I", 1, 0));
  DepSolution sol = SolveDependence(p);
  EXPECT_EQ(sol.result, DepResult::kAssumed);
  EXPECT_STREQ(sol.test, "assumed");
  ASSERT_EQ(sol.dir_masks.size(), 1u);
  EXPECT_EQ(sol.dir_masks[0], kDirAll);
}

TEST(DependenceSolveTest, WidenedTriangularBoundsNeverClaimAWitness) {
  // exact=false marks a widened (triangular) range: independence proofs over
  // the superset stay sound, but a kExact witness claim would not.
  DepProblem p;
  DepLoop tri = L("I", 1, 8);
  tri.exact = false;
  p.common.push_back(tri);
  p.src_subs.push_back(Var("I", 1, 0));
  p.dst_subs.push_back(Var("I", 1, -1));
  DepSolution sol = SolveDependence(p);
  EXPECT_NE(sol.result, DepResult::kIndependent);
  EXPECT_NE(sol.result, DepResult::kExact);
}

TEST(DependenceSolveTest, WidenedSideLoopSuppressesWitnessClaim) {
  // Strong SIV on the common loop, but the sink is also enclosed by a
  // widened triangular loop (exact=false) that may execute zero iterations:
  // the claimed witness pair need not exist, so kExact must be withheld.
  DepProblem p;
  p.common.push_back(L("I", 1, 8));
  DepLoop tri = L("T", 1, 8);
  tri.exact = false;
  p.dst_only.push_back(tri);
  p.src_subs.push_back(Var("I", 1, 0));
  p.dst_subs.push_back(Var("I", 1, -1));
  DepSolution sol = SolveDependence(p);
  EXPECT_NE(sol.result, DepResult::kIndependent);
  EXPECT_NE(sol.result, DepResult::kExact);
}

TEST(DependenceSolveTest, RefinedCarriedLevelsAreNotProductDerived) {
  // A(I,J) vs A(J,I): the feasible direction vectors are exactly
  // {(<,>), (>,<), (=,=)}, so each level's aggregated mask admits every
  // direction — yet no vector has '=' outer and non-'=' inner, so only the
  // outer level carries the dependence. Deriving carried levels from the
  // aggregated masks (a non-product set) would spuriously block the inner
  // loop.
  DepProblem p;
  p.common.push_back(L("I", 1, 4));
  p.common.push_back(L("J", 1, 4));
  p.src_subs.push_back(Var("I", 1, 0));
  p.src_subs.push_back(Var("J", 1, 0));
  p.dst_subs.push_back(Var("J", 1, 0));
  p.dst_subs.push_back(Var("I", 1, 0));
  DepSolution sol = SolveDependence(p);
  EXPECT_EQ(sol.result, DepResult::kExact);
  ASSERT_EQ(sol.carried.size(), 2u);
  EXPECT_TRUE(sol.carried[0]);
  EXPECT_FALSE(sol.carried[1]);
  ExpectSound(p, sol, BruteForceDirections(p), "transpose-carried");
}

TEST(DependenceSolveTest, SymbolicBoundsAreConservative) {
  DepProblem p;
  DepLoop sym;
  sym.var = "I";
  sym.known = false;
  p.common.push_back(sym);
  p.src_subs.push_back(Var("I", 1, 0));
  p.dst_subs.push_back(Var("I", 1, -3));
  DepSolution sol = SolveDependence(p);
  // With unbounded iteration count the distance-3 pair is always feasible;
  // either an exact or an assumed edge is acceptable, independence is not.
  EXPECT_NE(sol.result, DepResult::kIndependent);
}

// ---------------------------------------------------------------------------
// Randomized property tests against the oracle.

// Upper bound on the oracle's pair count for one problem.
int64_t PairSpace(const DepProblem& p) {
  auto trips = [](const DepLoop& l) {
    if (l.step > 0) {
      return l.hi < l.lo ? int64_t{0} : (l.hi - l.lo) / l.step + 1;
    }
    return l.lo < l.hi ? int64_t{0} : (l.lo - l.hi) / (-l.step) + 1;
  };
  int64_t n = 1;
  for (const DepLoop& l : p.common) {
    n *= trips(l) * trips(l);
  }
  for (const DepLoop& l : p.src_only) {
    n *= trips(l);
  }
  for (const DepLoop& l : p.dst_only) {
    n *= trips(l);
  }
  return n;
}

TEST(DependencePropertyTest, RandomAffineProblemsAgreeWithOracle) {
  std::mt19937 rng(20260809);
  auto pick = [&](int lo, int hi) { return lo + static_cast<int>(rng() % (hi - lo + 1)); };
  for (int trial = 0; trial < 400; ++trial) {
    DepProblem p;
    int k = pick(1, 2);
    std::vector<std::string> vars;
    for (int i = 0; i < k; ++i) {
      std::string v(1, static_cast<char>('I' + i));
      int64_t lo = pick(-3, 3);
      int64_t hi = lo + pick(0, 5);
      int64_t step = pick(1, 2);
      if (pick(0, 3) == 0) {  // occasionally a descending loop
        p.common.push_back(L(v, hi, lo, -step));
      } else {
        p.common.push_back(L(v, lo, hi, step));
      }
      vars.push_back(v);
    }
    std::vector<std::string> src_vars = vars;
    std::vector<std::string> dst_vars = vars;
    if (pick(0, 2) == 0) {
      p.src_only.push_back(L("S", 1, pick(1, 4)));
      src_vars.push_back("S");
    }
    if (pick(0, 2) == 0) {
      p.dst_only.push_back(L("T", 1, pick(1, 4)));
      dst_vars.push_back("T");
    }
    int dims = pick(1, 2);
    auto make_sub = [&](const std::vector<std::string>& pool) {
      int64_t coef = pick(-3, 3);
      int64_t c = pick(-8, 8);
      if (coef == 0) {
        return Const(c);
      }
      return Var(pool[static_cast<size_t>(pick(0, static_cast<int>(pool.size()) - 1))], coef, c);
    };
    for (int d = 0; d < dims; ++d) {
      p.src_subs.push_back(make_sub(src_vars));
      p.dst_subs.push_back(make_sub(dst_vars));
    }
    ASSERT_LE(PairSpace(p), int64_t{200000});
    DepSolution sol = SolveDependence(p);
    std::optional<std::vector<uint8_t>> oracle = BruteForceDirections(p);
    ExpectSound(p, sol, oracle, "trial " + std::to_string(trial));
    // With every bound exact, a witness claim must also be backed by the
    // oracle in the other direction: kExact <=> a pair exists whenever the
    // verdict is not assumed.
    if (sol.result == DepResult::kExact) {
      EXPECT_TRUE(oracle.has_value()) << "trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// Workload agreement: every problem the builder solved for the builtin
// workloads is re-run under the oracle (where its bounds are enumerable).

TEST(DependenceOracleTest, BuiltinWorkloadProblemsAgreeWithOracle) {
  int checked = 0;
  for (const auto* list : {&AllWorkloads(), &ExtendedWorkloads()}) {
    for (const Workload& w : *list) {
      Result<CompiledProgram> cp = CompiledProgram::FromSource(w.source);
      ASSERT_TRUE(cp.ok()) << w.name;
      const DependenceGraph& graph = cp.value().deps();
      for (const auto& [src, dst, problem] : graph.tested_problems()) {
        bool enumerable = true;
        for (const auto* loops : {&problem.common, &problem.src_only, &problem.dst_only}) {
          for (const DepLoop& l : *loops) {
            enumerable = enumerable && l.known;
          }
        }
        if (!enumerable || PairSpace(problem) > 2000000) {
          continue;
        }
        DepSolution sol = SolveDependence(problem);
        ExpectSound(problem, sol, BruteForceDirections(problem),
                    w.name + " sites " + std::to_string(src) + "->" + std::to_string(dst));
        ++checked;
      }
    }
  }
  // The suite is only meaningful if a healthy share of real problems ran.
  EXPECT_GE(checked, 50);
}

// ---------------------------------------------------------------------------
// Graph-level queries over small programs.

const DependenceGraph& GraphFor(Result<CompiledProgram>& cp) {
  EXPECT_TRUE(cp.ok());
  return cp.value().deps();
}

const Stmt* LoopByLabel(const Program& program, int64_t label) {
  const Stmt* found = nullptr;
  program.ForEachStmt([&](const Stmt& s) {
    if (s.kind == Stmt::Kind::kDoLoop && s.label == label) {
      found = &s;
    }
  });
  return found;
}

TEST(DependenceGraphTest, RecurrenceBlocksParallelizationPointwiseDoesNot) {
  Result<CompiledProgram> cp = CompiledProgram::FromSource(
      "      PROGRAM REC\n"
      "      DIMENSION A(16), B(16), C(16)\n"
      "      DO 10 I = 2, 16\n"
      "        A(I) = A(I-1) + B(I)\n"
      "   10 CONTINUE\n"
      "      DO 20 I = 1, 16\n"
      "        C(I) = B(I) + 1.0\n"
      "   20 CONTINUE\n"
      "      END\n");
  const DependenceGraph& g = GraphFor(cp);
  const Stmt* rec = LoopByLabel(cp.value().program(), 10);
  const Stmt* pt = LoopByLabel(cp.value().program(), 20);
  ASSERT_NE(rec, nullptr);
  ASSERT_NE(pt, nullptr);
  EXPECT_FALSE(g.CanParallelize(rec->loop_id));
  EXPECT_TRUE(g.CanParallelize(pt->loop_id));

  const DepEdge* blocker = g.BlockingEdge(rec->loop_id);
  ASSERT_NE(blocker, nullptr);
  EXPECT_EQ(blocker->array, "A");
  EXPECT_EQ(blocker->result, DepResult::kExact);
  EXPECT_EQ(g.BlockingEdge(pt->loop_id), nullptr);
}

TEST(DependenceGraphTest, TransposeBlocksOuterLoopOnly) {
  // B(I,J) = B(J,I): every conflicting iteration pair differs in the outer
  // index, so the inner loop carries nothing and stays parallelizable.
  Result<CompiledProgram> cp = CompiledProgram::FromSource(
      "      PROGRAM TRN\n"
      "      DIMENSION B(6,6)\n"
      "      DO 10 I = 1, 6\n"
      "        DO 20 J = 1, 6\n"
      "          B(I,J) = B(J,I) + 1.0\n"
      "   20   CONTINUE\n"
      "   10 CONTINUE\n"
      "      END\n");
  const DependenceGraph& g = GraphFor(cp);
  const Stmt* outer = LoopByLabel(cp.value().program(), 10);
  const Stmt* inner = LoopByLabel(cp.value().program(), 20);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_FALSE(g.CanParallelize(outer->loop_id));
  EXPECT_TRUE(g.CanParallelize(inner->loop_id));
}

TEST(DependenceGraphTest, IndirectSubscriptYieldsAssumedBlockingEdge) {
  Result<CompiledProgram> cp = CompiledProgram::FromSource(
      "      PROGRAM IND\n"
      "      INTEGER IDX(8)\n"
      "      DIMENSION A(8), B(8)\n"
      "      DO 10 I = 1, 8\n"
      "        IDX(I) = I\n"
      "   10 CONTINUE\n"
      "      DO 20 I = 1, 8\n"
      "        B(IDX(I)) = A(I)\n"
      "   20 CONTINUE\n"
      "      END\n");
  const DependenceGraph& g = GraphFor(cp);
  const Stmt* gather = LoopByLabel(cp.value().program(), 20);
  ASSERT_NE(gather, nullptr);
  EXPECT_FALSE(g.CanParallelize(gather->loop_id));
  const DepEdge* blocker = g.BlockingEdge(gather->loop_id);
  ASSERT_NE(blocker, nullptr);
  EXPECT_EQ(blocker->result, DepResult::kAssumed);
  EXPECT_GT(g.stats().tests_assumed, 0u);
}

TEST(DependenceGraphTest, AccessRangesTrackShiftedSubscripts) {
  Result<CompiledProgram> cp = CompiledProgram::FromSource(
      "      PROGRAM RNG\n"
      "      DIMENSION A(16), B(16)\n"
      "      DO 10 I = 2, 9\n"
      "        A(I) = B(I+1)\n"
      "   10 CONTINUE\n"
      "      END\n");
  const DependenceGraph& g = GraphFor(cp);
  const Stmt* loop = LoopByLabel(cp.value().program(), 10);
  ASSERT_NE(loop, nullptr);
  const auto* ranges = g.RangesFor(loop->loop_id);
  ASSERT_NE(ranges, nullptr);

  auto a = ranges->find("A");
  ASSERT_NE(a, ranges->end());
  ASSERT_EQ(a->second.dims.size(), 1u);
  EXPECT_TRUE(a->second.dims[0].known);
  EXPECT_EQ(a->second.dims[0].min, 2);
  EXPECT_EQ(a->second.dims[0].max, 9);
  EXPECT_TRUE(a->second.any_write);

  auto b = ranges->find("B");
  ASSERT_NE(b, ranges->end());
  ASSERT_EQ(b->second.dims.size(), 1u);
  EXPECT_TRUE(b->second.dims[0].known);
  EXPECT_EQ(b->second.dims[0].min, 3);
  EXPECT_EQ(b->second.dims[0].max, 10);
  EXPECT_FALSE(b->second.any_write);
}

TEST(DependenceGraphTest, StatsPartitionTestsRun) {
  for (const Workload& w : ExtendedWorkloads()) {
    Result<CompiledProgram> cp = CompiledProgram::FromSource(w.source);
    ASSERT_TRUE(cp.ok()) << w.name;
    const DependenceGraph::Stats& s = cp.value().deps().stats();
    EXPECT_EQ(s.tests_run, s.tests_exact + s.tests_assumed + s.tests_independent) << w.name;
    EXPECT_EQ(s.tests_run, cp.value().deps().tested_problems().size()) << w.name;
  }
}

TEST(DependenceGraphTest, DumpsMentionEverySiteAndEdge) {
  Result<CompiledProgram> cp = CompiledProgram::FromSource(
      "      PROGRAM DMP\n"
      "      DIMENSION A(8)\n"
      "      DO 10 I = 2, 8\n"
      "        A(I) = A(I-1)\n"
      "   10 CONTINUE\n"
      "      END\n");
  const DependenceGraph& g = GraphFor(cp);
  std::string text = g.ToText();
  EXPECT_NE(text.find("site 0"), std::string::npos);
  EXPECT_NE(text.find("parallelizable=no"), std::string::npos);
  std::string json = g.ToJson();
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
  EXPECT_NE(json.find("\"sites\""), std::string::npos);
  EXPECT_NE(json.find("\"ranges\""), std::string::npos);
}

}  // namespace
}  // namespace cdmm
