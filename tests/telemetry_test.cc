// Tests for src/telemetry: histogram edge cases (underflow/overflow, merge
// associativity, empty-merge identity), macro gating, registry canonical
// order and merge semantics, span-tracer JSON shape, the H003 name
// convention, and — the load-bearing property — cross---jobs determinism of
// every Det::kDeterministic metric on real workload sweeps.
#include "src/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/exec/sweep_scheduler.h"
#include "src/exec/thread_pool.h"
#include "src/lint/telemetry_names.h"
#include "src/telemetry/span_tracer.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace telem {
namespace {

// ---------------------------------------------------------------- histogram

TEST(BucketSpecTest, PowersOfTwoShape) {
  BucketSpec spec = BucketSpec::PowersOfTwo(4);
  EXPECT_EQ(spec.lower, 0u);
  EXPECT_EQ(spec.bounds, (std::vector<uint64_t>{1, 2, 4, 8}));
}

TEST(BucketSpecTest, LinearShape) {
  BucketSpec spec = BucketSpec::Linear(10, 3, 5);
  EXPECT_EQ(spec.lower, 5u);
  EXPECT_EQ(spec.bounds, (std::vector<uint64_t>{15, 25, 35}));
}

TEST(HistogramTest, UnderflowAndOverflowBuckets) {
  Histogram h(BucketSpec::Linear(10, 2, 5));  // regular range [5, 25]
  h.Record(4);    // below lower -> underflow
  h.Record(5);    // first bucket
  h.Record(15);   // first bucket (inclusive upper bound)
  h.Record(16);   // second bucket
  h.Record(25);   // second bucket
  h.Record(26);   // overflow
  h.Record(1000); // overflow
  HistogramData d = h.Snapshot();
  EXPECT_EQ(d.underflow, 1u);
  EXPECT_EQ(d.counts, (std::vector<uint64_t>{2, 2}));
  EXPECT_EQ(d.overflow, 2u);
  EXPECT_EQ(d.count, 7u);
  EXPECT_EQ(d.sum, 4u + 5 + 15 + 16 + 25 + 26 + 1000);
  EXPECT_EQ(d.min, 4u);
  EXPECT_EQ(d.max, 1000u);
}

HistogramData RecordAll(const BucketSpec& spec, const std::vector<uint64_t>& values) {
  Histogram h(spec);
  for (uint64_t v : values) {
    h.Record(v);
  }
  return h.Snapshot();
}

TEST(HistogramTest, MergeIsAssociative) {
  BucketSpec spec = BucketSpec::PowersOfTwo(6);
  HistogramData a = RecordAll(spec, {1, 3, 3, 7});
  HistogramData b = RecordAll(spec, {2, 64, 1000});
  HistogramData c = RecordAll(spec, {5});

  HistogramData ab = a;
  ab.MergeFrom(b);
  HistogramData ab_c = ab;
  ab_c.MergeFrom(c);

  HistogramData bc = b;
  bc.MergeFrom(c);
  HistogramData a_bc = a;
  a_bc.MergeFrom(bc);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, RecordAll(spec, {1, 3, 3, 7, 2, 64, 1000, 5}));
}

TEST(HistogramTest, MergeIsCommutative) {
  BucketSpec spec = BucketSpec::PowersOfTwo(6);
  HistogramData a = RecordAll(spec, {1, 8, 9});
  HistogramData b = RecordAll(spec, {4, 100});
  HistogramData ab = a;
  ab.MergeFrom(b);
  HistogramData ba = b;
  ba.MergeFrom(a);
  EXPECT_EQ(ab, ba);
}

TEST(HistogramTest, EmptyDataIsMergeIdentity) {
  BucketSpec spec = BucketSpec::PowersOfTwo(6);
  HistogramData a = RecordAll(spec, {1, 2, 3, 70});
  HistogramData merged = a;
  merged.MergeFrom(HistogramData(spec));
  EXPECT_EQ(merged, a);

  // Identity from the left too: empty.Merge(a) == a.
  HistogramData left = HistogramData(spec);
  left.MergeFrom(a);
  EXPECT_EQ(left, a);

  // min/max of a never-recorded histogram stay at their identities.
  HistogramData empty = RecordAll(spec, {});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.min, UINT64_MAX);
  EXPECT_EQ(empty.max, 0u);
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.GetCounter("zeta.last_seen").Add(1);
  reg.GetCounter("alpha.first_seen").Add(2);
  reg.GetCounter("mid.value_set").Add(3);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha.first_seen");
  EXPECT_EQ(snap.counters[1].name, "mid.value_set");
  EXPECT_EQ(snap.counters[2].name, "zeta.last_seen");
}

TEST(MetricsRegistryTest, MergeAddsCountersAndMaxesGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("t.events_seen").Add(10);
  b.GetCounter("t.events_seen").Add(5);
  b.GetCounter("t.only_in_b").Add(7);
  a.GetGauge("t.peak_level").UpdateMax(3);
  b.GetGauge("t.peak_level").UpdateMax(9);
  BucketSpec spec = BucketSpec::PowersOfTwo(4);
  a.GetHistogram("t.sizes_seen", spec).Record(2);
  b.GetHistogram("t.sizes_seen", spec).Record(5);

  a.MergeFrom(b);
  MetricsSnapshot snap = a.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "t.events_seen");
  EXPECT_EQ(snap.counters[0].value, 15u);
  EXPECT_EQ(snap.counters[1].value, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 9u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].data.count, 2u);
  EXPECT_EQ(snap.histograms[0].data.min, 2u);
  EXPECT_EQ(snap.histograms[0].data.max, 5u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("t.reset_probe");
  c.Add(5);
  reg.ResetValues();
  EXPECT_EQ(c.value(), 0u);
  ASSERT_EQ(reg.Names().size(), 1u);
  // The reference is still live (same object).
  c.Add(2);
  EXPECT_EQ(reg.Snapshot().counters[0].value, 2u);
}

// ------------------------------------------------------------ macro gating

TEST(TelemetryGatingTest, DisabledMacrosRegisterNothing) {
  SetTelemetryEnabled(false);
  TELEM_COUNT("telemtest.gating_probe");
  TELEM_GAUGE_MAX("telemtest.gating_gauge", 42);
  TELEM_HIST("telemtest.gating_hist", BucketSpec::PowersOfTwo(4), 3);
  std::vector<std::string> names = GlobalMetrics().Names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "telemtest.gating_probe"), 0);
  EXPECT_EQ(std::count(names.begin(), names.end(), "telemtest.gating_gauge"), 0);
  EXPECT_EQ(std::count(names.begin(), names.end(), "telemtest.gating_hist"), 0);
}

TEST(TelemetryGatingTest, EnabledMacrosRecord) {
  SetTelemetryEnabled(true);
  TELEM_COUNT("telemtest.enabled_probe");
  TELEM_COUNT_N("telemtest.enabled_probe", 4);
  SetTelemetryEnabled(false);
  // Counting while disabled is a no-op even though the site is registered.
  TELEM_COUNT_N("telemtest.enabled_probe", 100);
  EXPECT_EQ(GlobalMetrics().GetCounter("telemtest.enabled_probe").value(), 5u);
}

// ------------------------------------------------------------- span tracer

TEST(SpanTracerTest, WritesChromeTraceJson) {
  SpanTracer& tracer = SpanTracer::Global();
  tracer.SetEnabled(true);
  tracer.Clear();
  {
    TelemScope outer("outer-phase", "test");
    TelemScope inner("inner-phase", "test");
    inner.AddArg("workload", "INIT");
    inner.AddArg("items", uint64_t{3});
  }
  tracer.SetEnabled(false);
  std::ostringstream os;
  tracer.WriteChromeJson(os);
  std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name metadata
  EXPECT_NE(json.find("\"name\":\"outer-phase\""), std::string::npos);
  EXPECT_NE(json.find("\"inner-phase\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\":\"INIT\""), std::string::npos);
  EXPECT_NE(json.find("\"items\":3"), std::string::npos);  // numeric args unquoted
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  tracer.Clear();
}

TEST(SpanTracerTest, DisabledScopesRecordNothing) {
  SpanTracer& tracer = SpanTracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();
  { TelemScope scope("ignored", "test"); }
  EXPECT_EQ(tracer.size(), 0u);
}

// ---------------------------------------------------------- H003 names

TEST(TelemetryNamesTest, ConventionAcceptsAndRejects) {
  EXPECT_EQ(TelemetryNameViolation("vm.fault_serviced"), "");
  EXPECT_EQ(TelemetryNameViolation("os.swap_retries_exhausted"), "");
  EXPECT_EQ(TelemetryNameViolation("exec.queue_depth_peak"), "");
  EXPECT_EQ(TelemetryNameViolation("sweep.prepared_trace_built"), "");
  EXPECT_EQ(TelemetryNameViolation("sweep.gap_histogram_built"), "");
  EXPECT_EQ(TelemetryNameViolation("sweep.opt_points_computed"), "");
  EXPECT_NE(TelemetryNameViolation("faults"), "");               // no subsystem
  EXPECT_NE(TelemetryNameViolation("vm.faults"), "");            // single component
  EXPECT_NE(TelemetryNameViolation("vm.fault.serviced"), "");    // two dots
  EXPECT_NE(TelemetryNameViolation("Vm.fault_serviced"), "");    // uppercase
  EXPECT_NE(TelemetryNameViolation("vm.Fault_Serviced"), "");    // uppercase
  EXPECT_NE(TelemetryNameViolation("vm.fault__serviced"), "");   // empty component
  EXPECT_NE(TelemetryNameViolation("vm.fault_serviced_"), "");   // trailing '_'
  EXPECT_NE(TelemetryNameViolation("2vm.fault_serviced"), "");   // digit first
}

TEST(TelemetryNamesTest, LintProducesH003Warnings) {
  std::vector<Diagnostic> diags =
      LintTelemetryNames({"vm.fault_serviced", "BadName", "os.swap_completed"});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "H003");
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_NE(diags[0].message.find("BadName"), std::string::npos);
}

TEST(TelemetryNamesTest, EveryRegisteredNameFollowsTheConvention) {
  // Whatever earlier tests (or instrumented code) registered must be clean;
  // this is the in-process twin of `cdmm-lint --telemetry`, restricted to
  // real subsystem names (telemtest.* probes above are convention-valid too).
  for (const std::string& name : GlobalMetrics().Names()) {
    EXPECT_EQ(TelemetryNameViolation(name), "") << name;
  }
}

// ------------------------------------------- cross---jobs determinism

MetricsSnapshot SweepSnapshotAtJobs(const char* workload, unsigned jobs) {
  SetTelemetryEnabled(true);
  GlobalMetrics().ResetValues();
  auto cp = CompiledProgram::FromSource(FindWorkload(workload).source, {});
  EXPECT_TRUE(cp.ok());
  ThreadPool pool(jobs);
  SweepScheduler sched(&pool);
  SimOptions sim;
  sched.Lru(cp.value().shared_references(), cp.value().virtual_pages(), sim);
  sched.Ws(cp.value().shared_references(), {100, 1000, 10000}, sim);
  MetricsSnapshot snap = GlobalMetrics().Snapshot();
  SetTelemetryEnabled(false);
  return snap;
}

// Strips the Det::kRuntime rows a determinism diff must ignore.
MetricsSnapshot DeterministicOnly(MetricsSnapshot snap) {
  auto drop = [](auto& rows) {
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [](const auto& r) { return r.runtime; }),
               rows.end());
  };
  drop(snap.counters);
  drop(snap.gauges);
  drop(snap.histograms);
  return snap;
}

void ExpectSameDeterministicMetrics(const char* workload) {
  MetricsSnapshot base = DeterministicOnly(SweepSnapshotAtJobs(workload, 1));
  ASSERT_FALSE(base.empty());
  std::string base_text = RenderMetricsText(base);
  for (unsigned jobs : {4u, 8u}) {
    MetricsSnapshot snap = DeterministicOnly(SweepSnapshotAtJobs(workload, jobs));
    EXPECT_EQ(RenderMetricsText(snap), base_text)
        << workload << " deterministic metrics differ at --jobs " << jobs;
  }
}

TEST(TelemetryDeterminismTest, SweepMetricsIdenticalAcrossJobsInit) {
  ExpectSameDeterministicMetrics("INIT");
}

TEST(TelemetryDeterminismTest, SweepMetricsIdenticalAcrossJobsFdjac) {
  ExpectSameDeterministicMetrics("FDJAC");
}

// ----------------------------------------------- hierarchy.* instrumentation

MetricsSnapshot HierarchySnapshotAtJobs(unsigned jobs) {
  SetTelemetryEnabled(true);
  GlobalMetrics().ResetValues();
  auto cp = CompiledProgram::FromSource(FindWorkload("FDJAC").source, {});
  EXPECT_TRUE(cp.ok());
  ThreadPool pool(jobs);
  SweepScheduler sched(&pool);
  HierarchySpec shape = HierarchySpec::Parse("nvm:64:60,disk:*:2000").value();
  FaultInjectionConfig config;
  config.seed = 17;
  config.migration_failure_rate = 0.2;
  FaultInjector injector(config);
  SimOptions sim;
  sim.injector = &injector;
  sched.HierarchyLadder(cp.value().shared_trace(), cp.value().shared_references(), shape,
                        {"cd-outer", "lru:16", "ws:2000"}, {2000, 200, 20}, sim);
  MetricsSnapshot snap = GlobalMetrics().Snapshot();
  SetTelemetryEnabled(false);
  return snap;
}

TEST(TelemetryDeterminismTest, HierarchyMetricsIdenticalAcrossJobs) {
  MetricsSnapshot base = DeterministicOnly(HierarchySnapshotAtJobs(1));
  ASSERT_FALSE(base.empty());
  std::string base_text = RenderMetricsText(base);
  for (unsigned jobs : {4u, 8u}) {
    MetricsSnapshot snap = DeterministicOnly(HierarchySnapshotAtJobs(jobs));
    EXPECT_EQ(RenderMetricsText(snap), base_text)
        << "hierarchy metrics differ at --jobs " << jobs;
  }
}

TEST(TelemetryNamesTest, HierarchyFamilyIsRegisteredAndH003Clean) {
  MetricsSnapshot snap = HierarchySnapshotAtJobs(1);
  std::vector<std::string> hierarchy_names;
  auto collect = [&](const auto& rows) {
    for (const auto& row : rows) {
      if (row.name.rfind("hierarchy.", 0) == 0) {
        hierarchy_names.push_back(row.name);
        EXPECT_EQ(TelemetryNameViolation(row.name), "") << row.name;
      }
    }
  };
  collect(snap.counters);
  collect(snap.histograms);
  // The family's load-bearing members must all have fired in a mixed
  // LRU/WS/CD ladder with migration injection enabled.
  for (const char* expected :
       {"hierarchy.fault_routed", "hierarchy.page_promoted", "hierarchy.page_demoted",
        "hierarchy.hit_depth", "hierarchy.service_ticks", "hierarchy.demotion_dropped",
        "hierarchy.migration_retried"}) {
    EXPECT_NE(std::find(hierarchy_names.begin(), hierarchy_names.end(), expected),
              hierarchy_names.end())
        << expected << " never registered";
  }
}

}  // namespace
}  // namespace telem
}  // namespace cdmm
