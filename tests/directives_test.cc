#include "src/directives/plan.h"

#include <gtest/gtest.h>

#include "src/analysis/locality.h"
#include "src/analysis/loop_tree.h"
#include "src/lang/sema.h"

namespace cdmm {
namespace {

struct Fixture {
  Program program;
  std::unique_ptr<LoopTree> tree;
  std::unique_ptr<LocalityAnalysis> locality;
  DirectivePlan plan;

  explicit Fixture(std::string_view source, DirectivePlanOptions options = {}) {
    auto parsed = ParseAndCheck(source);
    EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().ToString());
    program = std::move(parsed).value();
    tree = std::make_unique<LoopTree>(program);
    locality = std::make_unique<LocalityAnalysis>(program, *tree, LocalityOptions{});
    plan = BuildDirectivePlan(*tree, *locality, options);
  }
};

constexpr char kFigure5[] = R"(
      PROGRAM FIG5
      PARAMETER (N = 100)
      DIMENSION A(N), B(N), C(N), D(N), E(N), F(N), CC(N,N), DD(N,N)
      DO 40 I = 1, N
        A(I) = B(I) + 1.0
        DO 20 J = 1, N
          C(J) = D(J) + CC(I,J)
          DD(J,I) = C(J)
   20   CONTINUE
        E(1) = F(1)
        DO 30 K = 1, N
          E(K) = F(K) * 2.0
          DO 10 L = 1, N
            F(L) = F(L) + E(K)
   10     CONTINUE
   30   CONTINUE
   40 CONTINUE
      END
)";

TEST(Algorithm1Test, EveryLoopGetsAnAllocate) {
  Fixture f(kFigure5);
  EXPECT_EQ(f.plan.allocate_before_loop.size(), 4u);
  for (const LoopNode* node : f.tree->preorder()) {
    EXPECT_EQ(f.plan.allocate_before_loop.count(node->loop_id), 1u);
  }
}

TEST(Algorithm1Test, ChainIsAncestorPathOutermostFirst) {
  Fixture f(kFigure5);
  // Loop 10 (innermost of the loop-30 nest, preorder id 4): its chain must be
  // (PI 3, X40) else (PI 2, X30) else (PI 1, X10) — Figure 5c's third
  // ALLOCATE.
  const AllocatePlan& inner = f.plan.allocate_before_loop.at(4);
  ASSERT_EQ(inner.chain.size(), 3u);
  EXPECT_EQ(inner.chain[0].priority, 3);
  EXPECT_EQ(inner.chain[1].priority, 2);
  EXPECT_EQ(inner.chain[2].priority, 1);
  // Figure 5c: "the argument (3,x1) is the first argument in all ALLOCATE
  // directives at all levels".
  for (const auto& [id, alloc] : f.plan.allocate_before_loop) {
    EXPECT_EQ(alloc.chain.front().priority, 3);
    EXPECT_EQ(alloc.chain.front().pages,
              f.plan.allocate_before_loop.at(1).chain.front().pages);
  }
}

TEST(Algorithm1Test, ChainSizesNonIncreasing) {
  Fixture f(kFigure5);
  for (const auto& [id, alloc] : f.plan.allocate_before_loop) {
    for (size_t i = 1; i < alloc.chain.size(); ++i) {
      EXPECT_GT(alloc.chain[i - 1].priority, alloc.chain[i].priority);
      EXPECT_GE(alloc.chain[i - 1].pages, alloc.chain[i].pages);
    }
  }
}

TEST(Algorithm1Test, SiblingLoopChainsShareOnlyAncestors) {
  Fixture f(kFigure5);
  // Loop 20 (id 2) chain: (3, X40) else (1, X20) — the Figure 5c second
  // ALLOCATE; loop 30 (id 3): (3, X40) else (2, X30).
  const AllocatePlan& l20 = f.plan.allocate_before_loop.at(2);
  ASSERT_EQ(l20.chain.size(), 2u);
  EXPECT_EQ(l20.chain[1].priority, 1);
  const AllocatePlan& l30 = f.plan.allocate_before_loop.at(3);
  ASSERT_EQ(l30.chain.size(), 2u);
  EXPECT_EQ(l30.chain[1].priority, 2);
}

TEST(Algorithm2Test, LocksInsertedBeforeNestedLoops) {
  Fixture f(kFigure5);
  // Figure 5c: LOCK (3, A, B) before loop 20 and LOCK (3, E, F) before
  // loop 30 (both hosted by loop 40, PJ = PI(loop 40) = 3); LOCK (2, E, F)
  // before loop 10 hosted by loop 30 (PJ = 2).
  auto before_20 = f.plan.LocksBefore(1, 2);
  ASSERT_EQ(before_20.size(), 1u);
  EXPECT_EQ(before_20[0]->pj, 3);
  EXPECT_EQ(before_20[0]->arrays, (std::vector<std::string>{"A", "B"}));

  auto before_30 = f.plan.LocksBefore(1, 3);
  ASSERT_EQ(before_30.size(), 1u);
  EXPECT_EQ(before_30[0]->pj, 3);
  EXPECT_EQ(before_30[0]->arrays, (std::vector<std::string>{"E", "F"}));

  auto before_10 = f.plan.LocksBefore(3, 4);
  ASSERT_EQ(before_10.size(), 1u);
  EXPECT_EQ(before_10[0]->pj, 2);
  EXPECT_EQ(before_10[0]->arrays, (std::vector<std::string>{"E", "F"}));
}

TEST(Algorithm2Test, NoLockWithoutPrecedingAssigns) {
  Fixture f(R"(
      PROGRAM P
      DIMENSION A(8,8)
      DO 20 I = 1, 8
        DO 10 J = 1, 8
          A(J,I) = 0.0
   10   CONTINUE
   20 CONTINUE
      END
)");
  EXPECT_TRUE(f.plan.LocksBefore(1, 2).empty());
  EXPECT_TRUE(f.plan.unlock_after_loop.empty());
}

TEST(Algorithm2Test, TrailingSegmentSkipsInsert) {
  // "IF Loop Exit Is Found THEN SKIP Next INSERT": assignments after the
  // last nested loop produce no LOCK.
  Fixture f(R"(
      PROGRAM P
      DIMENSION A(8), B(8)
      DO 20 I = 1, 8
        DO 10 J = 1, 8
          A(J) = 0.0
   10   CONTINUE
        B(I) = A(I)
   20 CONTINUE
      END
)");
  EXPECT_TRUE(f.plan.locks.empty());
}

TEST(Algorithm2Test, UnlockAfterOutermostListsAllLockedArrays) {
  Fixture f(kFigure5);
  ASSERT_EQ(f.plan.unlock_after_loop.size(), 1u);
  const UnlockPlan& unlock = f.plan.unlock_after_loop.at(1);
  EXPECT_EQ(unlock.arrays, (std::vector<std::string>{"A", "B", "E", "F"}));
}

TEST(Algorithm2Test, LockHostedByInnerLoopUsesItsPriority) {
  Fixture f(R"(
      PROGRAM P
      DIMENSION A(8), B(8,8)
      DO 30 I = 1, 8
        DO 20 J = 1, 8
          A(J) = A(J) + 1.0
          DO 10 K = 1, 8
            B(K,J) = A(J)
   10     CONTINUE
   20   CONTINUE
   30 CONTINUE
      END
)");
  auto locks = f.plan.LocksBefore(2, 3);
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_EQ(locks[0]->pj, 2);  // loop 20's PI
  EXPECT_EQ(locks[0]->arrays, (std::vector<std::string>{"A"}));
}

TEST(DirectivePlanOptionsTest, AllocateOnly) {
  Fixture f(kFigure5, DirectivePlanOptions{.insert_allocate = true, .insert_locks = false});
  EXPECT_EQ(f.plan.allocate_before_loop.size(), 4u);
  EXPECT_TRUE(f.plan.locks.empty());
  EXPECT_TRUE(f.plan.unlock_after_loop.empty());
}

TEST(DirectivePlanOptionsTest, LocksOnly) {
  Fixture f(kFigure5, DirectivePlanOptions{.insert_allocate = false, .insert_locks = true});
  EXPECT_TRUE(f.plan.allocate_before_loop.empty());
  EXPECT_FALSE(f.plan.locks.empty());
}

TEST(ListingTest, CompactListingMatchesFigure5cShape) {
  Fixture f(kFigure5);
  std::string listing = InstrumentedListing(*f.tree, f.plan, /*compact=*/true);
  // All four ALLOCATEs, three LOCKs and the final UNLOCK.
  EXPECT_NE(listing.find("ALLOCATE (3,"), std::string::npos);
  EXPECT_NE(listing.find("else (1,"), std::string::npos);
  EXPECT_NE(listing.find("else (2,"), std::string::npos);
  EXPECT_NE(listing.find("LOCK (3,A,B)"), std::string::npos);
  EXPECT_NE(listing.find("LOCK (3,E,F)"), std::string::npos);
  EXPECT_NE(listing.find("LOCK (2,E,F)"), std::string::npos);
  EXPECT_NE(listing.find("UNLOCK (A,B,E,F)"), std::string::npos);
  // ALLOCATE precedes its loop.
  EXPECT_LT(listing.find("ALLOCATE"), listing.find("Loop 40;"));
}

// ---------------------------------------------------------------------------
// The dependence-aware overload: Algorithm 2's "lock everything the segment
// touched" sharpened by the graph, plus the independent-loop record.

TEST(DependenceAwarePlanTest, PrunesLocksWithNoFlowIntoChildNest) {
  Fixture f(kFigure5);
  DependenceGraph deps = DependenceGraph::Build(f.program, *f.tree);
  DirectivePlan dp = BuildDirectivePlan(*f.tree, *f.locality, deps);

  // Algorithm 1's allocations are untouched by the sharpening.
  EXPECT_EQ(dp.allocate_before_loop.size(), f.plan.allocate_before_loop.size());

  std::string listing = InstrumentedListing(*f.tree, dp, /*compact=*/true);
  // A and B are only touched in the segment before loop 20, never inside it:
  // no dependence flows into the nest, so the lock is provably unnecessary.
  EXPECT_EQ(listing.find("LOCK (3,A,B)"), std::string::npos) << listing;
  // E and F flow from each segment into its child nest; those locks stay.
  EXPECT_NE(listing.find("LOCK (3,E,F)"), std::string::npos) << listing;
  EXPECT_NE(listing.find("LOCK (2,E,F)"), std::string::npos) << listing;
  // The exit UNLOCK is recomputed from the surviving locks.
  EXPECT_NE(listing.find("UNLOCK (E,F)"), std::string::npos) << listing;
  EXPECT_EQ(listing.find("UNLOCK (A,B,E,F)"), std::string::npos) << listing;
}

TEST(DependenceAwarePlanTest, RecordsProvablyIndependentLoops) {
  Fixture f(kFigure5);
  DependenceGraph deps = DependenceGraph::Build(f.program, *f.tree);
  DirectivePlan dp = BuildDirectivePlan(*f.tree, *f.locality, deps);

  auto loop_id = [&](int64_t label) {
    uint32_t id = 0;
    f.program.ForEachStmt([&](const Stmt& s) {
      if (s.kind == Stmt::Kind::kDoLoop && s.label == label) {
        id = s.loop_id;
      }
    });
    EXPECT_NE(id, 0u) << "label " << label;
    return id;
  };
  // Loops 20 and 10 carry no dependence; 30 and 40 carry the E/F recurrence.
  EXPECT_TRUE(dp.independent_loops.count(loop_id(20)));
  EXPECT_TRUE(dp.independent_loops.count(loop_id(10)));
  EXPECT_FALSE(dp.independent_loops.count(loop_id(30)));
  EXPECT_FALSE(dp.independent_loops.count(loop_id(40)));

  // The structural plan stays oblivious (and byte-identical to before).
  EXPECT_TRUE(f.plan.independent_loops.empty());
}

TEST(ListingTest, FullListingIncludesStatements) {
  Fixture f(kFigure5);
  std::string listing = InstrumentedListing(*f.tree, f.plan, /*compact=*/false);
  EXPECT_NE(listing.find("A(I) = "), std::string::npos);
  EXPECT_NE(listing.find("DD(J,I) = "), std::string::npos);
}

}  // namespace
}  // namespace cdmm
