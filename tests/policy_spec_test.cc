#include "src/vm/policy_spec.h"

#include <gtest/gtest.h>

#include "src/cdmm/pipeline.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/vmin.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

class PolicySpecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto cp = CompiledProgram::FromSource(FindWorkload("HWSCRT").source);
    ASSERT_TRUE(cp.ok());
    compiled_ = new CompiledProgram(std::move(cp).value());
    refs_ = new Trace(compiled_->trace().ReferencesOnly());
  }

  static const Trace& Full() { return compiled_->trace(); }
  static const Trace& Refs() { return *refs_; }

  static CompiledProgram* compiled_;
  static Trace* refs_;
};

CompiledProgram* PolicySpecTest::compiled_ = nullptr;
Trace* PolicySpecTest::refs_ = nullptr;

TEST_F(PolicySpecTest, EveryKnownSpecRuns) {
  for (const std::string& spec : KnownPolicySpecs()) {
    auto r = RunPolicySpec(spec, Full(), Refs());
    ASSERT_TRUE(r.has_value()) << spec;
    EXPECT_GT(r->references, 0u) << spec;
    EXPECT_GT(r->faults, 0u) << spec;
  }
}

TEST_F(PolicySpecTest, UnknownSpecsRejected) {
  EXPECT_FALSE(RunPolicySpec("nope", Full(), Refs()).has_value());
  EXPECT_FALSE(RunPolicySpec("cd-sideways", Full(), Refs()).has_value());
  EXPECT_FALSE(RunPolicySpec("", Full(), Refs()).has_value());
}

TEST_F(PolicySpecTest, LruSpecMatchesDirectCall) {
  auto spec = RunPolicySpec("lru:24", Full(), Refs());
  ASSERT_TRUE(spec.has_value());
  SimResult direct = SimulateFixed(Refs(), 24, Replacement::kLru);
  EXPECT_EQ(spec->faults, direct.faults);
  EXPECT_DOUBLE_EQ(spec->space_time, direct.space_time);
}

TEST_F(PolicySpecTest, WsSpecMatchesDirectCall) {
  auto spec = RunPolicySpec("ws:777", Full(), Refs());
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->faults, SimulateWs(Refs(), 777).faults);
}

TEST_F(PolicySpecTest, CdCapSpecMatchesDirectCall) {
  auto spec = RunPolicySpec("cd-cap:2", Full(), Refs());
  ASSERT_TRUE(spec.has_value());
  CdOptions options;
  options.selection = DirectiveSelection::kLevelCap;
  options.level_cap = 2;
  EXPECT_EQ(spec->faults, SimulateCd(Full(), options).faults);
}

TEST_F(PolicySpecTest, CdNolockPrefixDisablesLocks) {
  auto with = RunPolicySpec("cd-inner", Full(), Refs());
  auto without = RunPolicySpec("cd-nolock-inner", Full(), Refs());
  ASSERT_TRUE(with.has_value());
  ASSERT_TRUE(without.has_value());
  CdOptions options;
  options.selection = DirectiveSelection::kInnermost;
  options.honor_locks = false;
  EXPECT_EQ(without->faults, SimulateCd(Full(), options).faults);
}

TEST_F(PolicySpecTest, DefaultParametersApply) {
  auto r = RunPolicySpec("vmin", Full(), Refs());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->faults, SimulateVmin(Refs()).faults);
}

TEST_F(PolicySpecTest, SimOptionsPropagate) {
  SimOptions fast;
  fast.fault_service_time = 10;
  auto r = RunPolicySpec("lru:24", Full(), Refs(), fast);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->elapsed, r->references + r->faults * 10u);
}

}  // namespace
}  // namespace cdmm
