// Golden-trace regression tests. The parallel sweep engine shares one
// immutable reference trace per workload across every concurrent simulation,
// so any silent change to trace generation would skew every result at once.
// These goldens pin, for each of the paper's nine workloads: the reference
// count R, the virtual page count V, and an FNV-1a fingerprint of the full
// directive-bearing trace and of its references-only projection.
//
// If a deliberate pipeline change moves these values, regenerate them by
// printing Trace::Fingerprint() for each workload (the failure message shows
// the actual values in this table's format) and update EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/trace/trace.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

struct Golden {
  const char* name;
  uint64_t references;       // R of the references-only trace
  uint32_t virtual_pages;    // V
  uint64_t full_fingerprint; // FNV-1a over the directive-bearing trace
  uint64_t refs_fingerprint; // FNV-1a over the references-only projection
};

const Golden kGoldens[] = {
    {"MAIN", 506920, 102, 0xa7cd5f59fe46416dull, 0x327689d2dd7bb490ull},
    {"FDJAC", 885504, 604, 0xae9b0ad3899c3a57ull, 0x17d671262a34cb8bull},
    {"TQL", 1360960, 66, 0x936767947e7f9de4ull, 0x5eaf4d4c98e8fe6full},
    {"FIELD", 551424, 196, 0x37b06301acb167baull, 0xd3e97e496e98f03bull},
    {"INIT", 163840, 544, 0xebc24f9c12622db9ull, 0x970094e9b2ca527dull},
    {"APPROX", 982968, 193, 0x6b96578a4ff1ecc1ull, 0xb7e3aed02fa3aac7ull},
    {"HYBRJ", 721888, 67, 0x18ebfcb98750d2c4ull, 0x15df5e6ebff400c8ull},
    {"CONDUCT", 641104, 262, 0xc234836ece287f03ull, 0xc67e166ad6f52451ull},
    {"HWSCRT", 288000, 69, 0xc67d307bc9661007ull, 0xa6b09ab81ff3fe83ull},
};

std::string Row(const char* name, uint64_t r, uint32_t v, uint64_t full_fp,
                uint64_t refs_fp) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "{\"%s\", %llu, %u, 0x%016llxull, 0x%016llxull}",
                name, static_cast<unsigned long long>(r), v,
                static_cast<unsigned long long>(full_fp),
                static_cast<unsigned long long>(refs_fp));
  return buf;
}

class GoldenTraceTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTraceTest, TraceMatchesGolden) {
  const Golden& golden = GetParam();
  auto compiled = CompiledProgram::FromSource(FindWorkload(golden.name).source);
  ASSERT_TRUE(compiled.ok()) << compiled.error().ToString();
  const CompiledProgram& cp = compiled.value();
  std::shared_ptr<const Trace> full = cp.shared_trace();
  std::shared_ptr<const Trace> refs = cp.shared_references();

  std::string actual = Row(golden.name, refs->reference_count(), full->virtual_pages(),
                           full->Fingerprint(), refs->Fingerprint());
  std::string expected = Row(golden.name, golden.references, golden.virtual_pages,
                             golden.full_fingerprint, golden.refs_fingerprint);
  EXPECT_EQ(actual, expected)
      << "trace for " << golden.name
      << " changed; if intentional, replace the golden row with the actual";
  // The projection drops directives but never references.
  EXPECT_EQ(refs->reference_count(), full->reference_count());
  EXPECT_TRUE(refs->directives().empty());
  EXPECT_FALSE(full->directives().empty());
}

TEST_P(GoldenTraceTest, RegenerationIsDeterministic) {
  // Two independent compilations of the same source produce fingerprint-
  // identical traces — the property that makes the memoized shared trace
  // equivalent to per-simulation regeneration.
  const Golden& golden = GetParam();
  auto a = CompiledProgram::FromSource(FindWorkload(golden.name).source);
  auto b = CompiledProgram::FromSource(FindWorkload(golden.name).source);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().trace().Fingerprint(), b.value().trace().Fingerprint());
}

TEST(GoldenTraceCoverageTest, CoversAllNineWorkloads) {
  const std::vector<Workload>& all = AllWorkloads();
  ASSERT_EQ(all.size(), std::size(kGoldens));
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, kGoldens[i].name) << "golden table out of sync";
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GoldenTraceTest, ::testing::ValuesIn(kGoldens),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return std::string(info.param.name);
                         });

TEST(FingerprintTest, SensitiveToSmallChanges) {
  Trace a("t");
  a.set_virtual_pages(4);
  a.AddRef(0);
  a.AddRef(1);
  a.AddRef(2);

  Trace b("t");
  b.set_virtual_pages(4);
  b.AddRef(0);
  b.AddRef(2);  // swapped order
  b.AddRef(1);

  Trace c("t");
  c.set_virtual_pages(5);  // different V, same refs
  c.AddRef(0);
  c.AddRef(1);
  c.AddRef(2);

  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  EXPECT_EQ(a.Fingerprint(), [&] {
    Trace d("t");
    d.set_virtual_pages(4);
    d.AddRef(0);
    d.AddRef(1);
    d.AddRef(2);
    return d.Fingerprint();
  }());
}

}  // namespace
}  // namespace cdmm
