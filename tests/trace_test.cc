#include "src/trace/trace.h"

#include <gtest/gtest.h>

#include "src/trace/trace_io.h"

namespace cdmm {
namespace {

TEST(TraceTest, RefsCountAndStats) {
  Trace t("p");
  t.set_virtual_pages(10);
  t.AddRef(0);
  t.AddRef(3);
  t.AddRef(3);
  t.AddRef(9);
  EXPECT_EQ(t.reference_count(), 4u);
  TraceStats stats = t.ComputeStats();
  EXPECT_EQ(stats.references, 4u);
  EXPECT_EQ(stats.distinct_pages, 3u);
  EXPECT_EQ(stats.max_page, 9u);
  EXPECT_EQ(stats.page_counts[3], 2u);
}

TEST(TraceTest, OutOfRangeRefDies) {
  Trace t("p");
  t.set_virtual_pages(4);
  EXPECT_DEATH(t.AddRef(4), "out of range");
}

TEST(TraceTest, DirectiveOrderingInvariantsEnforced) {
  Trace t("p");
  t.set_virtual_pages(4);
  DirectiveRecord bad_priority;
  bad_priority.kind = DirectiveRecord::Kind::kAllocate;
  bad_priority.requests = {AllocateRequest{1, 5}, AllocateRequest{2, 3}};
  EXPECT_DEATH(t.AddDirective(bad_priority), "strictly decrease");

  DirectiveRecord bad_sizes;
  bad_sizes.kind = DirectiveRecord::Kind::kAllocate;
  bad_sizes.requests = {AllocateRequest{2, 3}, AllocateRequest{1, 5}};
  EXPECT_DEATH(t.AddDirective(bad_sizes), "non-increasing");
}

TEST(TraceTest, ReferencesOnlyStripsDirectivesAndMarkers) {
  Trace t("p");
  t.set_virtual_pages(4);
  t.AddLoopEnter(1);
  t.AddRef(0);
  DirectiveRecord d;
  d.kind = DirectiveRecord::Kind::kLock;
  d.lock_priority = 2;
  d.pages = {0};
  t.AddDirective(d);
  t.AddRef(1);
  t.AddLoopExit(1);

  Trace refs = t.ReferencesOnly();
  EXPECT_EQ(refs.events().size(), 2u);
  EXPECT_EQ(refs.reference_count(), 2u);
  EXPECT_TRUE(refs.directives().empty());
  EXPECT_EQ(refs.virtual_pages(), 4u);
  EXPECT_EQ(refs.name(), "p");
}

Trace SampleTrace() {
  Trace t("SAMPLE");
  t.set_virtual_pages(16);
  DirectiveRecord alloc;
  alloc.kind = DirectiveRecord::Kind::kAllocate;
  alloc.loop_id = 1;
  alloc.requests = {AllocateRequest{3, 12}, AllocateRequest{1, 2}};
  t.AddDirective(alloc);
  t.AddLoopEnter(1);
  t.AddRef(0);
  t.AddRef(5);
  DirectiveRecord lock;
  lock.kind = DirectiveRecord::Kind::kLock;
  lock.loop_id = 1;
  lock.lock_priority = 3;
  lock.pages = {0, 5};
  t.AddDirective(lock);
  t.AddRef(6);
  DirectiveRecord unlock;
  unlock.kind = DirectiveRecord::Kind::kUnlock;
  unlock.loop_id = 1;
  unlock.pages = {0, 5};
  t.AddDirective(unlock);
  t.AddLoopExit(1);
  return t;
}

TEST(TraceIoTest, RoundTrip) {
  Trace original = SampleTrace();
  std::string text = TraceToString(original);
  auto parsed = TraceFromString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed.value(), original);
}

TEST(TraceIoTest, TextFormatIsLineOriented) {
  std::string text = TraceToString(SampleTrace());
  EXPECT_NE(text.find("CDMMTRACE 1"), std::string::npos);
  EXPECT_NE(text.find("NAME SAMPLE"), std::string::npos);
  EXPECT_NE(text.find("PAGES 16"), std::string::npos);
  EXPECT_NE(text.find("D A 1 3:12 1:2"), std::string::npos);
  EXPECT_NE(text.find("D L 1 3 0 5"), std::string::npos);
  EXPECT_NE(text.find("D U 1 0 5"), std::string::npos);
  EXPECT_NE(text.find("R 5"), std::string::npos);
}

TEST(TraceIoTest, RejectsBadMagic) {
  auto r = TraceFromString("NOTATRACE 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("bad magic"), std::string::npos);
}

TEST(TraceIoTest, RejectsBadVersion) {
  auto r = TraceFromString("CDMMTRACE 99\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unsupported"), std::string::npos);
}

TEST(TraceIoTest, RejectsMalformedRequest) {
  auto r = TraceFromString("CDMMTRACE 1\nPAGES 4\nD A 1 nonsense\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("malformed ALLOCATE"), std::string::npos);
  EXPECT_EQ(r.error().location.line, 3u);
}

TEST(TraceIoTest, RejectsOutOfRangePage) {
  auto r = TraceFromString("CDMMTRACE 1\nPAGES 4\nR 7\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("out of range"), std::string::npos);
}

TEST(TraceIoTest, RejectsUnknownTag) {
  auto r = TraceFromString("CDMMTRACE 1\nZ 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unknown event tag"), std::string::npos);
}

TEST(TraceIoTest, RejectsEmptyStream) {
  auto r = TraceFromString("");
  ASSERT_FALSE(r.ok());
}

TEST(TraceIoTest, SkipsBlankLines) {
  auto r = TraceFromString("CDMMTRACE 1\n\nPAGES 4\n\nR 1\n");
  ASSERT_TRUE(r.ok()) << r.error().ToString();
  EXPECT_EQ(r.value().reference_count(), 1u);
}

TEST(TraceIoTest, AllocateWithNoRequestsRejected) {
  auto r = TraceFromString("CDMMTRACE 1\nPAGES 4\nD A 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("no requests"), std::string::npos);
}

}  // namespace
}  // namespace cdmm
