// In-process tests for the cdmmc driver's exit-code contract:
//   0 ok, 1 input error, 2 usage error, 3 partial results.
// Every failure path must print a diagnostic to the error stream and return
// instead of calling std::exit or aborting.
#include "src/cli/cli.h"

#include <gtest/gtest.h>

#include "src/cli/lint_cli.h"

#include <csignal>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/robust/fault_injector.h"
#include "src/support/interrupt.h"

namespace cdmm {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun RunCli(std::vector<std::string> args) {
  args.insert(args.begin(), "cdmmc");
  // Keep the per-invocation thread pool small.
  args.push_back("--jobs");
  args.push_back("2");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) {
    argv.push_back(a.data());
  }
  std::ostringstream out;
  std::ostringstream err;
  CliRun run;
  run.code = CdmmcMain(static_cast<int>(argv.size()), argv.data(), out, err);
  run.out = out.str();
  run.err = err.str();
  return run;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliTest, NoInputIsUsageError) {
  CliRun r = RunCli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownOptionIsUsageError) {
  CliRun r = RunCli({"--frobnicate", "builtin:INIT"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown option --frobnicate"), std::string::npos);
}

TEST(CliTest, MissingArgumentIsUsageErrorNotExit) {
  // This used to std::exit(2) from inside argument parsing.
  CliRun r = RunCli({"builtin:INIT", "--simulate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--simulate needs an argument"), std::string::npos);
}

TEST(CliTest, BadTraceFormatIsUsageError) {
  CliRun r = RunCli({"--trace-format", "yaml", "builtin:INIT"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("bad --trace-format 'yaml'"), std::string::npos);
}

TEST(CliTest, UnknownPolicySpecIsUsageError) {
  CliRun r = RunCli({"builtin:INIT", "--simulate", "quantum:3"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown policy spec 'quantum:3'"), std::string::npos);
}

TEST(CliTest, MissingSourceFileIsInputError) {
  CliRun r = RunCli({"/nonexistent/prog.f"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open /nonexistent/prog.f"), std::string::npos);
}

TEST(CliTest, MissingTraceFileIsInputError) {
  CliRun r = RunCli({"--trace-in", "/nonexistent/t.trace"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open /nonexistent/t.trace"), std::string::npos);
}

TEST(CliTest, CorruptTraceIsInputErrorWithDiagnostic) {
  std::string path = TempPath("corrupt.trace");
  {
    std::ofstream f(path, std::ios::binary);
    f << "CDMMTRACE 1\nNAME t\nPAGES 4\nR 0\nZZZ bogus\n";
  }
  CliRun r = RunCli({"--trace-in", path, "--simulate", "lru:8"});
  EXPECT_EQ(r.code, 1);
  // The diagnostic is the structured Error::ToString with its line number.
  EXPECT_NE(r.err.find(path + ": 5:"), std::string::npos) << r.err;
}

TEST(CliTest, ParseErrorInSourceIsInputError) {
  std::string path = TempPath("bad.f");
  {
    std::ofstream f(path);
    f << "      THIS IS NOT FORTRAN AT ALL (\n";
  }
  CliRun r = RunCli({path});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find(path + ": "), std::string::npos);
}

TEST(CliTest, SuccessfulSimulateIsZero) {
  CliRun r = RunCli({"builtin:INIT", "--simulate", "lru:16", "--simulate", "ws:2000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Policy"), std::string::npos);
  EXPECT_NE(r.out.find("LRU(m=16)"), std::string::npos);
  EXPECT_TRUE(r.err.empty()) << r.err;
}

TEST(CliTest, DeadlineWithoutPressureStillCompletes) {
  CliRun r = RunCli({"builtin:INIT", "--simulate", "lru:16", "--deadline", "600000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("LRU(m=16)"), std::string::npos);
}

TEST(CliTest, InjectedRunIsDeterministicAcrossInvocations) {
  std::vector<std::string> args = {"builtin:INIT", "--simulate", "lru:16", "--simulate",
                                   "ws:2000",      "--inject-seed", "42",  "--inject-rate",
                                   "0.8"};
  CliRun a = RunCli(args);
  CliRun b = RunCli(args);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(a.err, b.err);
}

TEST(CliTest, InjectedStallYieldsPartialResultsExitCode) {
  // Find a seed whose schedule stalls at least one of the first two sweep
  // items, so the run must degrade to a partial report.
  uint64_t seed = 0;
  for (uint64_t s = 1; s < 200; ++s) {
    FaultInjector probe(FaultInjectionConfig::AtIntensity(s, 1.0));
    if (probe.StallsSweepItem(0) || probe.StallsSweepItem(1)) {
      seed = s;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no stalling seed below 200 — lower the bar";
  CliRun r = RunCli({"builtin:INIT", "--simulate", "lru:16", "--simulate", "ws:2000",
                     "--inject-seed", std::to_string(seed), "--inject-rate", "1.0"});
  EXPECT_EQ(r.code, 3) << r.err;
  EXPECT_NE(r.err.find("timed out"), std::string::npos) << r.err;
  // The completed rows (if any) are still printed.
  EXPECT_NE(r.out.find("Policy"), std::string::npos);
}

TEST(CliTest, InjectionPerturbsSimulationResults) {
  CliRun nominal = RunCli({"builtin:INIT", "--simulate", "lru:16"});
  // Pick a seed that does NOT stall/poison item 0 so the row completes, then
  // check the injected service times changed the space-time column.
  uint64_t seed = 0;
  for (uint64_t s = 1; s < 200; ++s) {
    FaultInjector probe(FaultInjectionConfig::AtIntensity(s, 1.0));
    if (!probe.StallsSweepItem(0) && !probe.PoisonsSweepItem(0)) {
      seed = s;
      break;
    }
  }
  ASSERT_NE(seed, 0u);
  CliRun injected = RunCli({"builtin:INIT", "--simulate", "lru:16", "--inject-seed",
                            std::to_string(seed), "--inject-rate", "1.0"});
  EXPECT_EQ(nominal.code, 0);
  EXPECT_EQ(injected.code, 0) << injected.err;
  EXPECT_NE(nominal.out, injected.out);
}

TEST(CliTest, InjectSeedZeroIsExactlyNominal) {
  CliRun nominal = RunCli({"builtin:INIT", "--simulate", "lru:16"});
  CliRun zeroed = RunCli({"builtin:INIT", "--simulate", "lru:16", "--inject-seed", "0"});
  EXPECT_EQ(nominal.code, zeroed.code);
  EXPECT_EQ(nominal.out, zeroed.out);
}

TEST(CliTest, TraceRoundTripThroughFileStillWorks) {
  std::string path = TempPath("roundtrip.trace");
  CliRun w = RunCli({"builtin:INIT", "--trace-out", path, "--trace-format", "binary"});
  EXPECT_EQ(w.code, 0) << w.err;
  CliRun r = RunCli({"--trace-in", path, "--simulate", "lru:16"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("LRU(m=16)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// cdmmc --sweep / --sweep-engine: the parameter-sweep digests and the engine
// knob. Stdout must be byte-identical between engines (only stderr names the
// engine and the wall time).

TEST(CliSweepTest, HelpDocumentsSweepFlags) {
  CliRun r = RunCli({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("--sweep ws|opt|both"), std::string::npos);
  EXPECT_NE(r.out.find("--sweep-engine naive|onepass"), std::string::npos);
}

TEST(CliSweepTest, SweepStdoutIsByteIdenticalAcrossEngines) {
  CliRun onepass = RunCli({"builtin:INIT", "--sweep", "both", "--sweep-engine", "onepass"});
  CliRun naive = RunCli({"builtin:INIT", "--sweep", "both", "--sweep-engine", "naive"});
  EXPECT_EQ(onepass.code, 0) << onepass.err;
  EXPECT_EQ(naive.code, 0) << naive.err;
  EXPECT_EQ(onepass.out, naive.out);
  EXPECT_NE(onepass.out.find("sweep ws:"), std::string::npos);
  EXPECT_NE(onepass.out.find("sweep opt:"), std::string::npos);
  EXPECT_NE(onepass.out.find("fingerprint="), std::string::npos);
  EXPECT_NE(onepass.err.find("engine=onepass"), std::string::npos);
  EXPECT_NE(naive.err.find("engine=naive"), std::string::npos);
}

TEST(CliSweepTest, BadSweepKindIsUsageError) {
  CliRun r = RunCli({"builtin:INIT", "--sweep", "bogus"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--sweep"), std::string::npos);
}

TEST(CliSweepTest, BadSweepEngineExitsTwo) {
  EXPECT_EXIT(RunCli({"builtin:INIT", "--sweep", "ws", "--sweep-engine", "bogus"}),
              ::testing::ExitedWithCode(2), "bad --sweep-engine value");
}

// ---------------------------------------------------------------------------
// cdmmc --lint: exit code 4 on diagnostics, 0 on clean, 1 on parse failure.

std::string WriteFixture(const std::string& name, const std::string& text) {
  std::string path = TempPath(name);
  std::ofstream f(path);
  f << text;
  return path;
}

constexpr char kOobSource[] =
    "      PROGRAM OOB\n"
    "      PARAMETER (N = 10)\n"
    "      DIMENSION A(N)\n"
    "      DO 10 I = 1, 20\n"
    "        A(I) = 1.0\n"
    "   10 CONTINUE\n"
    "      END\n";

TEST(CliLintTest, CleanBuiltinExitsZeroWithNoOutput) {
  CliRun r = RunCli({"--lint", "builtin:MAIN"});
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_EQ(r.out, "");
}

TEST(CliLintTest, DiagnosticsExitFour) {
  std::string path = WriteFixture("lint_oob.f", kOobSource);
  CliRun r = RunCli({"--lint", path});
  EXPECT_EQ(r.code, 4);
  EXPECT_NE(r.out.find("[subscript-bounds/B002]"), std::string::npos);
}

TEST(CliLintTest, ParseFailureUnderLintExitsOne) {
  std::string path = WriteFixture("lint_bad.f", "      PROGRAM BAD\n");
  CliRun r = RunCli({"--lint", path});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("[parse/F001]"), std::string::npos);
}

TEST(CliLintTest, JsonModeEmitsAnArray) {
  CliRun clean = RunCli({"--lint=json", "builtin:TQL"});
  EXPECT_EQ(clean.code, 0);
  EXPECT_EQ(clean.out, "[]\n");
  std::string path = WriteFixture("lint_oob_json.f", kOobSource);
  CliRun dirty = RunCli({"--lint=json", path});
  EXPECT_EQ(dirty.code, 4);
  EXPECT_EQ(dirty.out.front(), '[');
  EXPECT_NE(dirty.out.find("\"code\": \"B002\""), std::string::npos);
  EXPECT_NE(dirty.out.find("\"severity\": \"error\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Dependence flags: --deps[=json] dumps and --parallel-nests determinism.

// Like RunCli but without the automatic `--jobs 2`, so tests can pin their
// own worker count.
CliRun RunCliRaw(std::vector<std::string> args) {
  args.insert(args.begin(), "cdmmc");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) {
    argv.push_back(a.data());
  }
  std::ostringstream out;
  std::ostringstream err;
  CliRun run;
  run.code = CdmmcMain(static_cast<int>(argv.size()), argv.data(), out, err);
  run.out = out.str();
  run.err = err.str();
  return run;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CliDepsTest, DepsFlagDumpsTheGraph) {
  CliRun r = RunCli({"--deps", "builtin:GATHER"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("dependence graph:"), std::string::npos);
  EXPECT_NE(r.out.find("assumed"), std::string::npos);
  EXPECT_NE(r.out.find("parallelizable=no"), std::string::npos);
}

TEST(CliDepsTest, DepsJsonDumpsSitesEdgesAndRanges) {
  CliRun r = RunCli({"--deps=json", "builtin:TRED"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.front(), '{');
  EXPECT_NE(r.out.find("\"sites\""), std::string::npos);
  EXPECT_NE(r.out.find("\"edges\""), std::string::npos);
  EXPECT_NE(r.out.find("\"ranges\""), std::string::npos);
}

TEST(CliDepsTest, ParallelNestsRunsConcurrentGroupsOnMatmulb) {
  CliRun r = RunCli({"--parallel-nests", "builtin:MATMULB"});
  EXPECT_EQ(r.code, 0) << r.err;
  // The two inlined INIT2 nests touch disjoint arrays and run concurrently.
  EXPECT_NE(r.out.find("parallel-nests: units=3 groups=2 concurrent=2"), std::string::npos)
      << r.out;
}

TEST(CliDepsTest, ParallelNestsTraceIsDeterministicAcrossJobs) {
  std::string seq = TempPath("pn_seq.trace");
  CliRun base = RunCli({"--trace-out", seq, "builtin:MATMULB"});
  ASSERT_EQ(base.code, 0) << base.err;
  std::string seq_bytes = ReadFileBytes(seq);
  ASSERT_FALSE(seq_bytes.empty());

  for (const char* jobs : {"1", "4", "8"}) {
    std::string path = TempPath(std::string("pn_jobs") + jobs + ".trace");
    CliRun r = RunCliRaw({"--parallel-nests", "--jobs", jobs, "--trace-out", path,
                          "builtin:MATMULB"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("parallel-nests: units="), std::string::npos);
    // MATMULB's dependence-refined plan matches the structural one, so the
    // merged trace must be byte-identical to the sequential trace at every
    // worker count.
    EXPECT_EQ(ReadFileBytes(path), seq_bytes) << "jobs=" << jobs;
  }
}

TEST(CliDepsTest, ParallelNestsFeedsDownstreamConsumers) {
  CliRun seq = RunCli({"--simulate", "lru", "builtin:STENCILG"});
  ASSERT_EQ(seq.code, 0) << seq.err;
  CliRun par = RunCli({"--parallel-nests", "--simulate", "lru", "builtin:STENCILG"});
  ASSERT_EQ(par.code, 0) << par.err;
  // Identical simulation table; the parallel run only adds its banner line.
  std::string banner_stripped = par.out;
  size_t banner = banner_stripped.find("parallel-nests: units=");
  ASSERT_NE(banner, std::string::npos);
  size_t eol = banner_stripped.find('\n', banner);
  banner_stripped.erase(banner, eol - banner + 1);
  EXPECT_EQ(banner_stripped, seq.out);
}

// ---------------------------------------------------------------------------
// The standalone cdmm-lint driver shares the contract (src/cli/lint_cli.h).

CliRun RunLint(std::vector<std::string> args) {
  args.insert(args.begin(), "cdmm-lint");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) {
    argv.push_back(a.data());
  }
  std::ostringstream out;
  std::ostringstream err;
  CliRun run;
  run.code = LintMain(static_cast<int>(argv.size()), argv.data(), out, err);
  run.out = out.str();
  run.err = err.str();
  return run;
}

TEST(LintMainTest, NoInputIsUsageError) {
  CliRun r = RunLint({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(LintMainTest, UnknownOptionIsUsageError) {
  CliRun r = RunLint({"--frobnicate", "builtin:MAIN"});
  EXPECT_EQ(r.code, 2);
}

TEST(LintMainTest, MissingOptionArgumentIsUsageError) {
  CliRun r = RunLint({"builtin:MAIN", "--page-size"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--page-size needs an argument"), std::string::npos);
}

TEST(LintMainTest, AllBuiltinWorkloadsLintCleanInOneRun) {
  CliRun r = RunLint({"builtin:MAIN", "builtin:FDJAC", "builtin:TQL", "builtin:FIELD",
                      "builtin:INIT", "builtin:APPROX", "builtin:HYBRJ", "builtin:CONDUCT",
                      "builtin:HWSCRT", "builtin:TRED", "builtin:POISSN", "builtin:GAUSSJ"});
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_EQ(r.out, "");
}

TEST(LintMainTest, UnknownBuiltinIsInputError) {
  CliRun r = RunLint({"builtin:NOPE"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown builtin workload"), std::string::npos);
}

TEST(LintMainTest, DiagnosticsExitFour) {
  std::string path = WriteFixture("lintmain_oob.f", kOobSource);
  CliRun r = RunLint({path});
  EXPECT_EQ(r.code, 4);
  EXPECT_NE(r.out.find("B002"), std::string::npos);
}

TEST(LintMainTest, InputErrorWinsOverDiagnosticsAcrossFiles) {
  std::string path = WriteFixture("lintmain_mixed.f", kOobSource);
  CliRun r = RunLint({path, "/nonexistent/prog.f"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("B002"), std::string::npos);  // still reported
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(LintMainTest, ValidateModeStaysCleanOnBuiltins) {
  CliRun r = RunLint({"--validate", "builtin:INIT", "builtin:TQL"});
  EXPECT_EQ(r.code, 0) << r.out;
}

// Like RunCli but without the helper's trailing "--jobs 2", so tests can pin
// their own thread count.
CliRun RunCliRawArgs(std::vector<std::string> args) {
  args.insert(args.begin(), "cdmmc");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) {
    argv.push_back(a.data());
  }
  std::ostringstream out;
  std::ostringstream err;
  CliRun run;
  run.code = CdmmcMain(static_cast<int>(argv.size()), argv.data(), out, err);
  run.out = out.str();
  run.err = err.str();
  return run;
}

// Drops the lines a cross---jobs determinism diff must ignore (wall-clock
// latencies and other Det::kRuntime metrics are marked "[runtime]").
std::string StripRuntimeLines(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string kept;
  while (std::getline(in, line)) {
    if (line.find("[runtime]") == std::string::npos) {
      kept += line;
      kept += '\n';
    }
  }
  return kept;
}

TEST(CliTelemetryTest, HelpDocumentsFullExitCodeContract) {
  CliRun r = RunCli({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.err, "");
  // The one authoritative statement of the contract (see PrintHelp).
  EXPECT_NE(r.out.find("exit codes:"), std::string::npos);
  EXPECT_NE(r.out.find("0  success"), std::string::npos);
  EXPECT_NE(r.out.find("1  input error"), std::string::npos);
  EXPECT_NE(r.out.find("2  usage error"), std::string::npos);
  EXPECT_NE(r.out.find("3  partial results"), std::string::npos);
  EXPECT_NE(r.out.find("4  lint diagnostics"), std::string::npos);
}

TEST(CliTelemetryTest, VersionAndBuildInfoPrintProvenance) {
  CliRun v = RunCli({"--version"});
  EXPECT_EQ(v.code, 0);
  EXPECT_EQ(v.out.rfind("cdmm ", 0), 0u) << v.out;
  CliRun b = RunCli({"--build-info"});
  EXPECT_EQ(b.code, 0);
  EXPECT_NE(b.out.find("git: "), std::string::npos);
  EXPECT_NE(b.out.find("compiler: "), std::string::npos);
  EXPECT_NE(b.out.find("build type: "), std::string::npos);
}

TEST(CliTelemetryTest, SidecarFlagsLeaveStdoutByteIdentical) {
  CliRun nominal = RunCli({"builtin:INIT", "--simulate", "lru:16", "--simulate", "cd-outer"});
  ASSERT_EQ(nominal.code, 0);
  std::string metrics_path = TempPath("telemetry_sidecar.json");
  std::string spans_path = TempPath("telemetry_spans.json");
  CliRun traced = RunCli({"builtin:INIT", "--simulate", "lru:16", "--simulate", "cd-outer",
                          "--metrics-out", metrics_path, "--trace-spans", spans_path});
  ASSERT_EQ(traced.code, 0) << traced.err;
  EXPECT_EQ(traced.out, nominal.out);

  std::ifstream metrics(metrics_path);
  std::ostringstream metrics_buf;
  metrics_buf << metrics.rdbuf();
  EXPECT_EQ(metrics_buf.str().rfind("{\"schema_version\":1,", 0), 0u);
  EXPECT_NE(metrics_buf.str().find("\"counters\":["), std::string::npos);

  std::ifstream spans(spans_path);
  std::ostringstream spans_buf;
  spans_buf << spans.rdbuf();
  EXPECT_EQ(spans_buf.str().rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(spans_buf.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(CliTelemetryTest, MetricsJsonCarriesEnvelope) {
  CliRun r = RunCli({"builtin:INIT", "--simulate", "lru:16", "--metrics=json"});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(r.out.find("\"tool\":\"cdmmc\""), std::string::npos);
  EXPECT_NE(r.out.find("\"build\":{"), std::string::npos);
  EXPECT_NE(r.out.find("vm.fault_serviced"), std::string::npos);
}

TEST(CliTelemetryTest, MetricsDeterministicAcrossJobsOnTwoWorkloads) {
  for (const char* workload : {"builtin:INIT", "builtin:FDJAC"}) {
    std::vector<std::string> base = {workload,     "--simulate", "lru:16",
                                     "--simulate", "ws:2000",    "--simulate",
                                     "cd-outer",   "--metrics"};
    auto at_jobs = [&](const char* jobs) {
      std::vector<std::string> args = base;
      args.push_back("--jobs");
      args.push_back(jobs);
      CliRun r = RunCliRawArgs(args);
      EXPECT_EQ(r.code, 0) << r.err;
      return StripRuntimeLines(r.out);
    };
    std::string jobs1 = at_jobs("1");
    EXPECT_NE(jobs1.find("== metrics (cdmmc) =="), std::string::npos);
    EXPECT_EQ(at_jobs("4"), jobs1) << workload << ": --jobs 4 diverged";
    EXPECT_EQ(at_jobs("8"), jobs1) << workload << ": --jobs 8 diverged";
  }
}

TEST(LintMainTest, TelemetryModeChecksRegisteredNamesClean) {
  CliRun r = RunLint({"--telemetry"});
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find(" 0 violation(s)"), std::string::npos) << r.out;
}

TEST(LintMainTest, TelemetryModeRejectsSourceInputs) {
  CliRun r = RunLint({"--telemetry", "builtin:MAIN"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--telemetry takes no source inputs"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Graceful interruption: the documented 130/143 contract and the latched-
// signal behaviour (stages skipped, sidecars still flushed).

TEST(CliInterruptTest, HelpDocumentsTheInterruptExitCodes) {
  CliRun r = RunCli({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("130/143  interrupted (128 + SIGINT/SIGTERM)"),
            std::string::npos);
  EXPECT_NE(r.out.find("sidecars are flushed before exiting"), std::string::npos);
}

TEST(CliInterruptTest, LatchedSigintSkipsStagesAndExits130) {
  SimulateInterruptForTesting(SIGINT);
  CliRun r = RunCli({"builtin:INIT", "--simulate", "lru:16"});
  ClearInterruptForTesting();
  EXPECT_EQ(r.code, 130);
  EXPECT_NE(r.err.find("interrupted"), std::string::npos);
  // The interrupted stage produced no result rows.
  EXPECT_EQ(r.out.find("LRU(m=16)"), std::string::npos) << r.out;
}

TEST(CliInterruptTest, LatchedSigtermStillFlushesTheMetricsSidecar) {
  std::string metrics_path = TempPath("interrupt_sidecar.json");
  SimulateInterruptForTesting(SIGTERM);
  CliRun r = RunCli({"builtin:INIT", "--simulate", "lru:16", "--metrics-out",
                     metrics_path});
  ClearInterruptForTesting();
  EXPECT_EQ(r.code, 143);
  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good()) << "sidecar missing after interrupted run";
  std::ostringstream buf;
  buf << metrics.rdbuf();
  EXPECT_EQ(buf.str().rfind("{\"schema_version\":1,", 0), 0u);
}

TEST(CliInterruptTest, ClearedLatchRestoresNominalRuns) {
  CliRun r = RunCli({"builtin:INIT", "--simulate", "lru:16"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("LRU(m=16)"), std::string::npos);
}

}  // namespace
}  // namespace cdmm
